package pattern

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/event"
)

// This file implements the static analysis backing the complexity
// results of Section 4.4: mutual exclusivity of event variables
// (Definition 6, Lemma 1) and the classification of event set patterns
// into the three cases of Theorems 1-3, with the corresponding upper
// bounds on the number of simultaneous automaton instances |Ω|.

// MutuallyExclusive reports whether two variables of p are mutually
// exclusive per Definition 6: there exist constant conditions
// v.A φ C and v'.A φ' C' in Θ such that no single event can satisfy
// both. The check is conservative — it returns true only when
// disjointness is certain (dense-domain interval reasoning), which is
// the safe direction for Lemma 1.
func (p *Pattern) MutuallyExclusive(v, v2 string) bool {
	if v == v2 {
		return false
	}
	for _, c1 := range p.ConstConds(v) {
		for _, c2 := range p.ConstConds(v2) {
			if c1.Left.Attr == c2.Left.Attr && disjointConsts(c1.Op, c1.Const, c2.Op, c2.Const) {
				return true
			}
		}
	}
	return false
}

// PairwiseMutuallyExclusive reports whether all variables in the i-th
// event set pattern are pairwise mutually exclusive.
func (p *Pattern) PairwiseMutuallyExclusive(set int) bool {
	vars := p.Sets[set]
	for i := 0; i < len(vars); i++ {
		for j := i + 1; j < len(vars); j++ {
			if !p.MutuallyExclusive(vars[i].Name, vars[j].Name) {
				return false
			}
		}
	}
	return true
}

// disjointConsts reports whether the constraints (x op1 c1) and
// (x op2 c2) are certainly unsatisfiable together. Reasoning is over a
// dense domain, which is conservative for discrete domains: whenever it
// reports true, the conjunction is empty in every ordered domain.
func disjointConsts(op1 Op, c1 event.Value, op2 Op, c2 event.Value) bool {
	cmp, err := event.Compare(c1, c2)
	if err != nil {
		return false // incomparable constants: cannot conclude anything
	}
	// Equality constraints are handled directly.
	switch {
	case op1 == Eq && op2 == Eq:
		return cmp != 0
	case op1 == Eq:
		return !op2.Eval(cmp) // x = c1 must also satisfy c1 op2 c2
	case op2 == Eq:
		return !op1.Eval(-cmp) // x = c2 must also satisfy c2 op1 c1
	case op1 == Ne || op2 == Ne:
		return false // x != c excludes a single point only
	}
	// Both are inequalities: intersect the two half-lines.
	lo, loStrict, hi, hiStrict := false, false, false, false // bounds present?
	var loV, hiV event.Value
	add := func(op Op, c event.Value) {
		switch op {
		case Lt, Le:
			if !hi || mustLess(c, hiV) || (c.Equal(hiV) && op == Lt) {
				hi, hiV, hiStrict = true, c, op == Lt
			}
		case Gt, Ge:
			if !lo || mustLess(loV, c) || (c.Equal(loV) && op == Gt) {
				lo, loV, loStrict = true, c, op == Gt
			}
		}
	}
	add(op1, c1)
	add(op2, c2)
	if !lo || !hi {
		return false // still a half-line, never empty on a dense domain
	}
	c, err := event.Compare(loV, hiV)
	if err != nil {
		return false
	}
	if c > 0 {
		return true
	}
	if c == 0 && (loStrict || hiStrict) {
		return true
	}
	return false
}

// mustLess reports a < b, treating incomparable values as false.
func mustLess(a, b event.Value) bool {
	c, err := event.Compare(a, b)
	return err == nil && c < 0
}

// Case identifies which of the three complexity cases of Section 4.4
// an event set pattern falls into.
type Case uint8

// The three cases of the complexity analysis.
const (
	// Case1: all event variables pairwise mutually exclusive.
	// Theorem 1: |Ω| per start instance is O(1).
	Case1 Case = 1
	// Case2: not pairwise mutually exclusive, no group variables.
	// Theorem 2: |Ω| per start instance is O(|V1|!).
	Case2 Case = 2
	// Case3: not pairwise mutually exclusive, k >= 1 group variables.
	// Theorem 3: O((|V1|-1)!·W^|V1|) for k = 1,
	// O(k·(|V1|-1)!·k^(W·|V1|)) for k > 1.
	Case3 Case = 3
)

// String names the case.
func (c Case) String() string { return fmt.Sprintf("case %d", uint8(c)) }

// SetAnalysis classifies one event set pattern.
type SetAnalysis struct {
	SetIndex          int  // 0-based index of the event set pattern
	Size              int  // |Vi|
	GroupVars         int  // k, the number of group variables in Vi
	MutuallyExclusive bool // all variables pairwise mutually exclusive
	Case              Case
	Bound             string // upper bound on |Ω| from the matching theorem
}

// Analysis is the result of classifying a full SES pattern.
type Analysis struct {
	Sets []SetAnalysis
	// Bound is the overall upper bound O(W·(|Ω|max)^n) where |Ω|max is
	// the worst bound among the event set patterns (end of Section 4.4).
	Bound string
	// Deterministic reports whether Lemma 1 applies to every event set
	// pattern, i.e. non-determinism cannot occur anywhere.
	Deterministic bool
}

// Analyze classifies the pattern per Section 4.4 and derives the upper
// bounds of Theorems 1-3.
func Analyze(p *Pattern) Analysis {
	a := Analysis{Deterministic: true}
	worst := 0 // 0: case1, 1: case2, 2: case3 k=1, 3: case3 k>1
	worstSize, worstK := 0, 0
	for i, set := range p.Sets {
		sa := SetAnalysis{SetIndex: i, Size: len(set)}
		for _, v := range set {
			if v.Group {
				sa.GroupVars++
			}
		}
		sa.MutuallyExclusive = p.PairwiseMutuallyExclusive(i)
		switch {
		case sa.MutuallyExclusive:
			sa.Case = Case1
			sa.Bound = "O(1)"
		case sa.GroupVars == 0:
			sa.Case = Case2
			sa.Bound = fmt.Sprintf("O(|V%d|!) = O(%s)", i+1, factorialString(sa.Size))
			a.Deterministic = false
		case sa.GroupVars == 1:
			sa.Case = Case3
			sa.Bound = fmt.Sprintf("O((|V%d|-1)! · W^%d) = O(%s · W^%d)",
				i+1, sa.Size, factorialString(sa.Size-1), sa.Size)
			a.Deterministic = false
		default:
			sa.Case = Case3
			sa.Bound = fmt.Sprintf("O(%d · (|V%d|-1)! · %d^(W·%d)) = O(%d · %s · %d^(W·%d))",
				sa.GroupVars, i+1, sa.GroupVars, sa.Size,
				sa.GroupVars, factorialString(sa.Size-1), sa.GroupVars, sa.Size)
			a.Deterministic = false
		}
		rank := rankOf(sa)
		if rank > worst || (rank == worst && sa.Size > worstSize) {
			worst, worstSize, worstK = rank, sa.Size, sa.GroupVars
		}
		a.Sets = append(a.Sets, sa)
	}
	n := len(p.Sets)
	switch worst {
	case 0:
		a.Bound = fmt.Sprintf("O(W · 1^%d) = O(W)", n)
	case 1:
		a.Bound = fmt.Sprintf("O(W · (%s)^%d)", factorialString(worstSize), n)
	case 2:
		a.Bound = fmt.Sprintf("O(W · (%s · W^%d)^%d)", factorialString(worstSize-1), worstSize, n)
	default:
		a.Bound = fmt.Sprintf("O(W · (%d · %s · %d^(W·%d))^%d)",
			worstK, factorialString(worstSize-1), worstK, worstSize, n)
	}
	return a
}

func rankOf(sa SetAnalysis) int {
	switch {
	case sa.Case == Case1:
		return 0
	case sa.Case == Case2:
		return 1
	case sa.GroupVars == 1:
		return 2
	default:
		return 3
	}
}

// factorialString renders n! as a number when it fits, else as "n!".
func factorialString(n int) string {
	if n <= 0 {
		return "1"
	}
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
		if f > math.MaxInt64/2 {
			return fmt.Sprintf("%d!", n)
		}
	}
	return fmt.Sprintf("%d", int64(f))
}

// EstimateInstances evaluates the set's theorem bound numerically for
// a window size W: Theorem 1 gives 1, Theorem 2 |Vi|!, Theorem 3
// (|Vi|−1)!·W^|Vi| for one group variable and k·(|Vi|−1)!·k^(W·|Vi|)
// for k > 1 (which overflows to +Inf for any realistic W — the
// theorem's point). The result bounds the instances descending from
// ONE start instance.
func (sa SetAnalysis) EstimateInstances(w int) float64 {
	switch {
	case sa.Case == Case1:
		return 1
	case sa.Case == Case2:
		return factorialFloat(sa.Size)
	case sa.GroupVars == 1:
		return factorialFloat(sa.Size-1) * math.Pow(float64(w), float64(sa.Size))
	default:
		k := float64(sa.GroupVars)
		return k * factorialFloat(sa.Size-1) * math.Pow(k, float64(w*sa.Size))
	}
}

// EstimateInstances evaluates the overall bound O(W·(|Ω|max)^n) of
// Section 4.4 numerically: W start instances, each multiplied by the
// worst per-set bound raised to the number of event set patterns.
// Values beyond float64 range return +Inf.
func (a Analysis) EstimateInstances(w int) float64 {
	worst := 0.0
	for _, sa := range a.Sets {
		if b := sa.EstimateInstances(w); b > worst {
			worst = b
		}
	}
	return float64(w) * math.Pow(worst, float64(len(a.Sets)))
}

// factorialFloat returns n! as float64 (+Inf on overflow).
func factorialFloat(n int) float64 {
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
	}
	return f
}

// String renders the analysis as a short multi-line report.
func (a Analysis) String() string {
	var b strings.Builder
	for _, sa := range a.Sets {
		me := "not mutually exclusive"
		if sa.MutuallyExclusive {
			me = "pairwise mutually exclusive"
		}
		fmt.Fprintf(&b, "V%d: |V|=%d, group vars=%d, %s → %s, bound %s\n",
			sa.SetIndex+1, sa.Size, sa.GroupVars, me, sa.Case, sa.Bound)
	}
	fmt.Fprintf(&b, "overall: %s", a.Bound)
	return b.String()
}

package pattern

import (
	"strings"
	"testing"

	"repro/internal/event"
)

func chemoSchema() *event.Schema {
	return event.MustSchema(
		event.Field{Name: "ID", Type: event.TypeInt},
		event.Field{Name: "L", Type: event.TypeString},
		event.Field{Name: "V", Type: event.TypeFloat},
	)
}

// q1 builds the running-example pattern of Example 2.
func q1(t *testing.T) *Pattern {
	t.Helper()
	p, err := New().
		Set(Var("c"), Plus("p"), Var("d")).
		Set(Var("b")).
		WhereConst("c", "L", Eq, event.String("C")).
		WhereConst("d", "L", Eq, event.String("D")).
		WhereConst("p", "L", Eq, event.String("P")).
		WhereConst("b", "L", Eq, event.String("B")).
		WhereVars("c", "ID", Eq, "p", "ID").
		WhereVars("c", "ID", Eq, "d", "ID").
		WhereVars("d", "ID", Eq, "b", "ID").
		Within(264 * event.Hour).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestOpEvalAndFlip(t *testing.T) {
	cases := []struct {
		op   Op
		cmp  int
		want bool
	}{
		{Eq, 0, true}, {Eq, 1, false},
		{Ne, 0, false}, {Ne, -1, true},
		{Lt, -1, true}, {Lt, 0, false},
		{Le, 0, true}, {Le, 1, false},
		{Gt, 1, true}, {Gt, 0, false},
		{Ge, 0, true}, {Ge, -1, false},
	}
	for _, c := range cases {
		if got := c.op.Eval(c.cmp); got != c.want {
			t.Errorf("%s.Eval(%d) = %v, want %v", c.op, c.cmp, got, c.want)
		}
		// a op b  ==  b op.Flip() a for all comparisons.
		if got := c.op.Flip().Eval(-c.cmp); got != c.want {
			t.Errorf("%s.Flip().Eval(%d) = %v, want %v", c.op, -c.cmp, got, c.want)
		}
	}
	if Eq.Flip() != Eq || Ne.Flip() != Ne || Lt.Flip() != Gt || Ge.Flip() != Le {
		t.Errorf("Flip mapping wrong")
	}
}

func TestOpString(t *testing.T) {
	want := map[Op]string{Eq: "=", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">="}
	for op, s := range want {
		if op.String() != s {
			t.Errorf("%v.String() = %q, want %q", uint8(op), op.String(), s)
		}
	}
}

func TestBuilderBuildsQ1(t *testing.T) {
	p := q1(t)
	if len(p.Sets) != 2 || len(p.Sets[0]) != 3 || len(p.Sets[1]) != 1 {
		t.Fatalf("sets = %v", p.Sets)
	}
	if p.NumVariables() != 4 {
		t.Errorf("NumVariables = %d", p.NumVariables())
	}
	if len(p.Conds) != 7 {
		t.Errorf("len(Conds) = %d", len(p.Conds))
	}
	if p.Window != 264*event.Hour {
		t.Errorf("Window = %v", p.Window)
	}
	v, set, ok := p.Lookup("p")
	if !ok || !v.Group || set != 0 {
		t.Errorf("Lookup(p) = %v, %d, %v", v, set, ok)
	}
	if _, _, ok := p.Lookup("z"); ok {
		t.Errorf("Lookup(z) should fail")
	}
	if !p.HasGroupVariables() {
		t.Errorf("HasGroupVariables = false")
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		p    *Pattern
		frag string
	}{
		{"no sets", &Pattern{Window: 1}, "at least one"},
		{"empty set", &Pattern{Sets: [][]Variable{{}}, Window: 1}, "empty"},
		{"zero window", &Pattern{Sets: [][]Variable{{Var("a")}}}, "positive"},
		{"dup var in set", &Pattern{Sets: [][]Variable{{Var("a"), Var("a")}}, Window: 1}, "more than once"},
		{"dup var across sets", &Pattern{Sets: [][]Variable{{Var("a")}, {Var("a")}}, Window: 1}, "more than once"},
		{"unnamed var", &Pattern{Sets: [][]Variable{{Var("")}}, Window: 1}, "unnamed"},
		{"cond on unknown var", &Pattern{
			Sets:   [][]Variable{{Var("a")}},
			Conds:  []Condition{ConstCond("z", "L", Eq, event.String("x"))},
			Window: 1,
		}, "undeclared"},
		{"cond on unknown right var", &Pattern{
			Sets:   [][]Variable{{Var("a")}},
			Conds:  []Condition{VarCond("a", "L", Eq, "z", "L")},
			Window: 1,
		}, "undeclared"},
		{"empty attribute", &Pattern{
			Sets:   [][]Variable{{Var("a")}},
			Conds:  []Condition{ConstCond("a", "", Eq, event.String("x"))},
			Window: 1,
		}, "empty attribute"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.p.Validate()
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("Validate() = %v, want error containing %q", err, c.frag)
			}
		})
	}
}

func TestValidateMaxVariables(t *testing.T) {
	var vars []Variable
	for i := 0; i < MaxVariables+1; i++ {
		vars = append(vars, Var(strings.Repeat("v", i+1)))
	}
	p := &Pattern{Sets: [][]Variable{vars}, Window: 1}
	if err := p.Validate(); err == nil {
		t.Errorf("pattern with %d variables should fail", len(vars))
	}
	p = &Pattern{Sets: [][]Variable{vars[:MaxVariables]}, Window: 1}
	if err := p.Validate(); err != nil {
		t.Errorf("pattern with %d variables should pass: %v", MaxVariables, err)
	}
}

func TestValidateSchema(t *testing.T) {
	s := chemoSchema()
	if err := q1(t).ValidateSchema(s); err != nil {
		t.Errorf("Q1 should validate: %v", err)
	}
	bad := New().Set(Var("a")).
		WhereConst("a", "NOPE", Eq, event.String("x")).
		Within(1).MustBuild()
	if err := bad.ValidateSchema(s); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("unknown attribute: %v", err)
	}
	bad2 := New().Set(Var("a")).
		WhereConst("a", "L", Eq, event.Int(1)).
		Within(1).MustBuild()
	if err := bad2.ValidateSchema(s); err == nil || !strings.Contains(err.Error(), "string") {
		t.Errorf("type mismatch const: %v", err)
	}
	bad3 := New().Set(Var("a"), Var("b2")).
		WhereVars("a", "L", Lt, "b2", "V").
		Within(1).MustBuild()
	if err := bad3.ValidateSchema(s); err == nil {
		t.Errorf("string vs float attribute comparison should fail")
	}
	ok := New().Set(Var("a"), Var("b2")).
		WhereVars("a", "ID", Lt, "b2", "V"). // int vs float is comparable
		Within(1).MustBuild()
	if err := ok.ValidateSchema(s); err != nil {
		t.Errorf("int vs float comparison should pass: %v", err)
	}
}

func TestConstConds(t *testing.T) {
	p := q1(t)
	cs := p.ConstConds("c")
	if len(cs) != 1 || cs[0].Const.Str() != "C" {
		t.Errorf("ConstConds(c) = %v", cs)
	}
	if len(p.ConstConds("nope")) != 0 {
		t.Errorf("ConstConds on unknown variable should be empty")
	}
}

func TestPatternString(t *testing.T) {
	s := q1(t).String()
	for _, frag := range []string{
		"PERMUTE(c, p+, d)", "THEN PERMUTE(b)",
		`c.L = "C"`, "c.ID = p.ID", "WITHIN 11d",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() missing %q:\n%s", frag, s)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := q1(t)
	c := p.Clone()
	c.Sets[0][0] = Var("x")
	c.Conds[0] = ConstCond("x", "L", Eq, event.String("X"))
	if p.Sets[0][0].Name != "c" || p.Conds[0].Left.Var != "c" {
		t.Errorf("Clone is shallow")
	}
}

func TestConditionHelpers(t *testing.T) {
	c := ConstCond("a", "L", Eq, event.String("x"))
	if !c.Mentions("a") || c.Mentions("b") {
		t.Errorf("Mentions on const cond wrong")
	}
	v := VarCond("a", "L", Lt, "b", "M")
	if !v.Mentions("a") || !v.Mentions("b") || v.Mentions("c") {
		t.Errorf("Mentions on var cond wrong")
	}
	if got := c.String(); got != `a.L = "x"` {
		t.Errorf("const cond String = %q", got)
	}
	if got := v.String(); got != "a.L < b.M" {
		t.Errorf("var cond String = %q", got)
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := New().Set().Within(1).Build(); err == nil {
		t.Errorf("empty Set should fail")
	}
	if _, err := New().Within(1).Build(); err == nil {
		t.Errorf("pattern without sets should fail")
	}
	defer func() {
		if recover() == nil {
			t.Errorf("MustBuild should panic on invalid pattern")
		}
	}()
	New().MustBuild()
}

func TestVariablesOrder(t *testing.T) {
	p := q1(t)
	vars := p.Variables()
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = v.String()
	}
	if strings.Join(names, ",") != "c,p+,d,b" {
		t.Errorf("Variables order = %v", names)
	}
}

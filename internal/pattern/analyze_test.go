package pattern

import (
	"math"
	"strings"
	"testing"

	"repro/internal/event"
)

func TestDisjointConsts(t *testing.T) {
	s := event.String
	i := event.Int
	cases := []struct {
		op1  Op
		c1   event.Value
		op2  Op
		c2   event.Value
		want bool
	}{
		// Equality pairs.
		{Eq, s("C"), Eq, s("D"), true},
		{Eq, s("C"), Eq, s("C"), false},
		{Eq, i(1), Eq, i(2), true},
		// Eq vs inequalities.
		{Eq, i(5), Lt, i(5), true},  // x=5 ∧ x<5
		{Eq, i(4), Lt, i(5), false}, // x=4 ∧ x<5
		{Eq, i(5), Le, i(5), false}, // x=5 ∧ x<=5
		{Eq, i(6), Le, i(5), true},  // x=6 ∧ x<=5
		{Eq, i(5), Gt, i(5), true},  // x=5 ∧ x>5
		{Eq, i(5), Ge, i(6), true},  // x=5 ∧ x>=6
		{Eq, i(6), Ge, i(6), false}, // x=6 ∧ x>=6
		{Lt, i(5), Eq, i(5), true},  // symmetric orientation
		{Ge, i(6), Eq, i(5), true},  // x>=6 ∧ x=5
		{Le, i(6), Eq, i(5), false}, // x<=6 ∧ x=5
		// Ne never proves disjointness with inequalities.
		{Ne, i(5), Lt, i(5), false},
		{Ne, i(5), Ne, i(5), false},
		{Eq, i(5), Ne, i(5), true},
		{Ne, i(5), Eq, i(5), true},
		{Eq, i(5), Ne, i(4), false},
		// Interval pairs.
		{Lt, i(5), Gt, i(5), true},  // x<5 ∧ x>5
		{Lt, i(5), Gt, i(4), false}, // 4<x<5 dense: satisfiable (conservative)
		{Lt, i(5), Ge, i(5), true},  // x<5 ∧ x>=5
		{Le, i(5), Ge, i(5), false}, // x=5 works
		{Le, i(4), Ge, i(5), true},  // x<=4 ∧ x>=5
		{Gt, i(5), Ge, i(7), false}, // same direction, never disjoint
		{Lt, i(5), Le, i(7), false},
		{Gt, i(3), Lt, i(2), true}, // x>3 ∧ x<2
		// Strings under inequalities.
		{Lt, s("b"), Gt, s("c"), true},
		{Lt, s("c"), Gt, s("b"), false},
		// Incomparable constants: never disjoint.
		{Eq, s("5"), Eq, i(5), false},
	}
	for _, c := range cases {
		if got := disjointConsts(c.op1, c.c1, c.op2, c.c2); got != c.want {
			t.Errorf("disjoint(x %s %v, x %s %v) = %v, want %v", c.op1, c.c1, c.op2, c.c2, got, c.want)
		}
		// Disjointness is symmetric.
		if got := disjointConsts(c.op2, c.c2, c.op1, c.c1); got != c.want {
			t.Errorf("disjoint symmetric(x %s %v, x %s %v) = %v, want %v", c.op2, c.c2, c.op1, c.c1, got, c.want)
		}
	}
}

// exclusivePattern builds ⟨{c,d,p},{b}⟩ with distinct type conditions
// (Experiment 1's Θ1 shape).
func exclusivePattern(t *testing.T) *Pattern {
	t.Helper()
	return New().
		Set(Var("c"), Var("d"), Var("p")).
		Set(Var("b")).
		WhereConst("c", "L", Eq, event.String("C")).
		WhereConst("d", "L", Eq, event.String("D")).
		WhereConst("p", "L", Eq, event.String("P")).
		WhereConst("b", "L", Eq, event.String("B")).
		Within(264 * event.Hour).MustBuild()
}

// overlappingPattern builds the same shape with all variables matching
// the same type (Experiment 1's Θ2 shape).
func overlappingPattern(t *testing.T, group bool) *Pattern {
	t.Helper()
	pv := Var("p")
	if group {
		pv = Plus("p")
	}
	return New().
		Set(Var("c"), Var("d"), pv).
		Set(Var("b")).
		WhereConst("c", "L", Eq, event.String("P")).
		WhereConst("d", "L", Eq, event.String("P")).
		WhereConst("p", "L", Eq, event.String("P")).
		WhereConst("b", "L", Eq, event.String("B")).
		Within(264 * event.Hour).MustBuild()
}

func TestMutuallyExclusive(t *testing.T) {
	p := exclusivePattern(t)
	if !p.MutuallyExclusive("c", "d") {
		t.Errorf("c and d should be mutually exclusive (Example 10)")
	}
	if p.MutuallyExclusive("c", "c") {
		t.Errorf("a variable is never exclusive with itself")
	}
	if !p.PairwiseMutuallyExclusive(0) || !p.PairwiseMutuallyExclusive(1) {
		t.Errorf("all sets of the exclusive pattern should be pairwise exclusive")
	}

	o := overlappingPattern(t, false)
	if o.MutuallyExclusive("c", "d") {
		t.Errorf("same-type variables must not be exclusive")
	}
	if o.PairwiseMutuallyExclusive(0) {
		t.Errorf("overlapping set misclassified")
	}
	// b is exclusive with the medication variables.
	if !o.MutuallyExclusive("c", "b") {
		t.Errorf("P vs B should be exclusive")
	}
}

func TestMutuallyExclusiveNeedsSameAttribute(t *testing.T) {
	p := New().Set(Var("a"), Var("b2")).
		WhereConst("a", "L", Eq, event.String("x")).
		WhereConst("b2", "M", Eq, event.String("y")).
		Within(1).MustBuild()
	if p.MutuallyExclusive("a", "b2") {
		t.Errorf("conditions on different attributes cannot prove exclusivity")
	}
}

func TestAnalyzeCase1(t *testing.T) {
	a := Analyze(exclusivePattern(t))
	if !a.Deterministic {
		t.Errorf("case-1 pattern should be deterministic (Lemma 1)")
	}
	if a.Sets[0].Case != Case1 || a.Sets[1].Case != Case1 {
		t.Errorf("cases = %+v", a.Sets)
	}
	if a.Sets[0].Bound != "O(1)" {
		t.Errorf("bound = %q", a.Sets[0].Bound)
	}
	if !strings.Contains(a.Bound, "O(W)") {
		t.Errorf("overall bound = %q", a.Bound)
	}
}

func TestAnalyzeCase2(t *testing.T) {
	a := Analyze(overlappingPattern(t, false))
	if a.Deterministic {
		t.Errorf("case-2 pattern cannot be deterministic")
	}
	if a.Sets[0].Case != Case2 {
		t.Errorf("V1 case = %v", a.Sets[0].Case)
	}
	if !strings.Contains(a.Sets[0].Bound, "O(|V1|!) = O(6)") {
		t.Errorf("V1 bound = %q", a.Sets[0].Bound)
	}
	if a.Sets[1].Case != Case1 {
		t.Errorf("V2 = {b} should be case 1, got %v", a.Sets[1].Case)
	}
}

func TestAnalyzeCase3SingleGroup(t *testing.T) {
	a := Analyze(overlappingPattern(t, true))
	if a.Sets[0].Case != Case3 || a.Sets[0].GroupVars != 1 {
		t.Errorf("V1 = %+v", a.Sets[0])
	}
	if !strings.Contains(a.Sets[0].Bound, "W^3") {
		t.Errorf("k=1 bound = %q", a.Sets[0].Bound)
	}
	if !strings.Contains(a.Bound, "O(W · (") {
		t.Errorf("overall bound = %q", a.Bound)
	}
}

func TestAnalyzeCase3MultiGroup(t *testing.T) {
	p := New().
		Set(Plus("x"), Plus("y"), Var("z")).
		WhereConst("x", "L", Eq, event.String("P")).
		WhereConst("y", "L", Eq, event.String("P")).
		WhereConst("z", "L", Eq, event.String("P")).
		Within(10).MustBuild()
	a := Analyze(p)
	if a.Sets[0].Case != Case3 || a.Sets[0].GroupVars != 2 {
		t.Fatalf("set analysis = %+v", a.Sets[0])
	}
	if !strings.Contains(a.Sets[0].Bound, "2^(W·3)") {
		t.Errorf("k=2 bound = %q", a.Sets[0].Bound)
	}
}

func TestAnalyzeStringReport(t *testing.T) {
	s := Analyze(overlappingPattern(t, true)).String()
	for _, frag := range []string{"V1:", "V2:", "case 3", "case 1", "overall:"} {
		if !strings.Contains(s, frag) {
			t.Errorf("report missing %q:\n%s", frag, s)
		}
	}
}

func TestFactorialString(t *testing.T) {
	if factorialString(0) != "1" || factorialString(1) != "1" ||
		factorialString(5) != "120" || factorialString(6) != "720" {
		t.Errorf("factorialString small values wrong: %s %s %s",
			factorialString(1), factorialString(5), factorialString(6))
	}
	if factorialString(30) != "30!" {
		t.Errorf("factorialString(30) = %q, want symbolic", factorialString(30))
	}
}

// TestLemma1Shape checks the statement of Lemma 1 on the level of the
// analysis: a pattern whose variables all carry pairwise disjoint
// constant conditions is classified deterministic.
func TestLemma1Shape(t *testing.T) {
	p := New().
		Set(Var("a"), Var("b2"), Var("c"), Var("d"), Var("e2"), Var("f")).
		WhereConst("a", "V", Lt, event.Float(1)).
		WhereConst("b2", "V", Ge, event.Float(1)).
		WhereConst("b2", "V", Lt, event.Float(2)).
		WhereConst("c", "V", Ge, event.Float(2)).
		WhereConst("c", "V", Lt, event.Float(3)).
		WhereConst("d", "V", Ge, event.Float(3)).
		WhereConst("d", "V", Lt, event.Float(4)).
		WhereConst("e2", "V", Ge, event.Float(4)).
		WhereConst("e2", "V", Lt, event.Float(5)).
		WhereConst("f", "V", Ge, event.Float(5)).
		Within(100).MustBuild()
	a := Analyze(p)
	if !a.Deterministic {
		t.Errorf("interval-partitioned variables should be pairwise exclusive:\n%s", a)
	}
}

func TestEstimateInstances(t *testing.T) {
	// Case 1: constant per start; overall O(W).
	a1 := Analyze(exclusivePattern(t))
	if got := a1.Sets[0].EstimateInstances(100); got != 1 {
		t.Errorf("case-1 estimate = %g", got)
	}
	if got := a1.EstimateInstances(100); got != 100 {
		t.Errorf("case-1 overall = %g, want 100 (W·1^n)", got)
	}
	// Case 2: |V1|! per start.
	a2 := Analyze(overlappingPattern(t, false))
	if got := a2.Sets[0].EstimateInstances(100); got != 6 {
		t.Errorf("case-2 estimate = %g, want 3! = 6", got)
	}
	// Case 3, k = 1: (|V1|-1)!·W^|V1|.
	a3 := Analyze(overlappingPattern(t, true))
	if got := a3.Sets[0].EstimateInstances(10); got != 2*1000 {
		t.Errorf("case-3 estimate = %g, want 2·10^3", got)
	}
	// Overall: W · (bound)^n with n = 2 sets.
	if got := a3.EstimateInstances(10); got != 10*2000*2000 {
		t.Errorf("case-3 overall = %g", got)
	}
	// Case 3, k > 1 explodes to +Inf for any realistic window.
	p := New().
		Set(Plus("x"), Plus("y"), Var("z")).
		WhereConst("x", "L", Eq, event.String("P")).
		WhereConst("y", "L", Eq, event.String("P")).
		WhereConst("z", "L", Eq, event.String("P")).
		Within(10).MustBuild()
	if got := Analyze(p).Sets[0].EstimateInstances(1000); !math.IsInf(got, 1) {
		t.Errorf("k=2 estimate should overflow, got %g", got)
	}
}

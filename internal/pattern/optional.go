package pattern

import "fmt"

// This file extends SES patterns beyond the paper's class — one of the
// future-work directions named in its conclusion ("enhance SES
// automata to support a broader class of SES patterns"): optional
// variables.
//
//	v   singleton      exactly one binding
//	v+  group          one or more bindings
//	v?  optional       zero or one binding
//	v*  optional group zero or more bindings
//
// Optional variables are evaluated by variant expansion: a pattern
// with k optional variables denotes the union of up to 2^k plain SES
// patterns, one per subset of included optionals (ExpandOptionals).
// Conditions mentioning an excluded variable are dropped — with zero
// bindings they hold vacuously under the substitution semantics of
// Section 3.2. The MAXIMAL semantics across variants (prefer binding
// an optional variable when possible) is enforced by the engine's
// FilterMaximal pass over the union of the variants' matches.

// Opt constructs an optional singleton variable (v?).
func Opt(name string) Variable { return Variable{Name: name, Optional: true} }

// Star constructs an optional group variable (v*), zero or more
// bindings.
func Star(name string) Variable { return Variable{Name: name, Group: true, Optional: true} }

// MaxOptionalVariables caps the optional variables per pattern, since
// expansion is exponential in their number.
const MaxOptionalVariables = 12

// HasOptionalVariables reports whether any variable is optional.
func (p *Pattern) HasOptionalVariables() bool {
	for _, set := range p.Sets {
		for _, v := range set {
			if v.Optional {
				return true
			}
		}
	}
	return false
}

// validateOptionals extends Validate for the optional-variable
// extension: at least one variable must be non-optional (a pattern
// whose every variable can bind nothing denotes the empty match), and
// the expansion must stay tractable.
func (p *Pattern) validateOptionals() error {
	optionals := 0
	required := 0
	for _, set := range p.Sets {
		for _, v := range set {
			if v.Optional {
				optionals++
			} else {
				required++
			}
		}
	}
	if optionals > 0 && required == 0 {
		return fmt.Errorf("pattern: at least one variable must be non-optional")
	}
	if optionals > MaxOptionalVariables {
		return fmt.Errorf("pattern: %d optional variables exceed the supported maximum of %d",
			optionals, MaxOptionalVariables)
	}
	return nil
}

// ExpandOptionals expands the pattern into plain SES patterns (without
// optional variables), one per subset of included optional variables.
// Variants whose event set patterns all become empty are dropped; an
// event set pattern that becomes empty is removed from its variant's
// sequence. A pattern without optional variables expands to itself.
func ExpandOptionals(p *Pattern) ([]*Pattern, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.HasOptionalVariables() {
		return []*Pattern{p.Clone()}, nil
	}
	var optionals []string
	for _, set := range p.Sets {
		for _, v := range set {
			if v.Optional {
				optionals = append(optionals, v.Name)
			}
		}
	}

	var variants []*Pattern
	for mask := 0; mask < 1<<len(optionals); mask++ {
		excluded := make(map[string]bool)
		for i, name := range optionals {
			if mask&(1<<i) == 0 {
				excluded[name] = true
			}
		}
		v := &Pattern{Window: p.Window}
		for _, set := range p.Sets {
			var vars []Variable
			for _, sv := range set {
				if excluded[sv.Name] {
					continue
				}
				vars = append(vars, Variable{Name: sv.Name, Group: sv.Group})
			}
			if len(vars) > 0 {
				v.Sets = append(v.Sets, vars)
			}
		}
		if len(v.Sets) == 0 {
			continue
		}
		for _, c := range p.Conds {
			if excluded[c.Left.Var] || (!c.HasConst && excluded[c.Right.Var]) {
				continue // vacuously true with zero bindings
			}
			v.Conds = append(v.Conds, c)
		}
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("pattern: expansion produced an invalid variant: %w", err)
		}
		// The aggregation clause is attached after validation: a variant
		// may exclude an optional variable that an aggregate restricts
		// to (sum(v.A) with v excluded), which simply means zero
		// contributions from that variant's matches.
		v.Agg = p.Agg.Clone()
		variants = append(variants, v)
	}
	return variants, nil
}

package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/paperdata"
)

func TestReadBasic(t *testing.T) {
	src := `T:time,ID:int,L:string,V:float
10,1,C,1672.5
2010-07-03T10:00:00Z,1,B,0
`
	rel, err := Read(strings.NewReader(src), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() != 2 {
		t.Fatalf("Len = %d", rel.Len())
	}
	if got := rel.Schema().String(); got != "ID:int, L:string, V:float" {
		t.Errorf("schema = %q", got)
	}
	e0 := rel.Event(0)
	if e0.Time != 10 || e0.Attrs[0].Int64() != 1 || e0.Attrs[1].Str() != "C" || e0.Attrs[2].Float64() != 1672.5 {
		t.Errorf("e0 = %v", e0)
	}
	if rel.Event(1).Time != 1278151200 { // 2010-07-03 10:00 UTC
		t.Errorf("RFC3339 time = %d", rel.Event(1).Time)
	}
}

func TestReadTimeColumnAnywhere(t *testing.T) {
	src := "ID:int,When:time,L:string\n1,5,A\n2,6,B\n"
	rel, err := Read(strings.NewReader(src), ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Event(0).Time != 5 || rel.Event(0).Attrs[1].Str() != "A" {
		t.Errorf("e0 = %v", rel.Event(0))
	}
	if rel.Schema().NumFields() != 2 {
		t.Errorf("schema = %s", rel.Schema())
	}
}

func TestReadErrors(t *testing.T) {
	cases := []struct {
		name, src, frag string
	}{
		{"empty", "", "missing header"},
		{"no time column", "ID:int,L:string\n", "no time column"},
		{"two time columns", "A:time,B:time\n", "multiple time"},
		{"bad header form", "T:time,ID\n", "name:type"},
		{"bad type", "T:time,X:blob\n", "unknown field type"},
		{"bad time", "T:time,L:string\nnoon,A\n", "invalid time"},
		{"bad int", "T:time,ID:int\n1,xyz\n", "invalid int"},
		{"bad float", "T:time,V:float\n1,xyz\n", "invalid float"},
		{"ragged row", "T:time,L:string\n1\n", "wrong number of fields"},
		{"unsorted", "T:time,L:string\n5,A\n1,B\n", "not in time order"},
		{"dup field", "T:time,X:int,X:int\n", "duplicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Read(strings.NewReader(c.src), ReadOptions{})
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error = %v, want containing %q", err, c.frag)
			}
		})
	}
}

func TestReadSortOption(t *testing.T) {
	src := "T:time,L:string\n5,A\n1,B\n"
	rel, err := Read(strings.NewReader(src), ReadOptions{Sort: true})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Event(0).Time != 1 || rel.Event(1).Time != 5 {
		t.Errorf("not sorted: %v", rel.Events())
	}
}

func TestRoundTripPaperRelation(t *testing.T) {
	rel := paperdata.Relation()
	var b strings.Builder
	if err := Write(&b, rel); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()), ReadOptions{})
	if err != nil {
		t.Fatalf("%v\n%s", err, b.String())
	}
	if back.Len() != rel.Len() {
		t.Fatalf("Len = %d, want %d", back.Len(), rel.Len())
	}
	for i := 0; i < rel.Len(); i++ {
		a, z := rel.Event(i), back.Event(i)
		if a.Time != z.Time || len(a.Attrs) != len(z.Attrs) {
			t.Fatalf("event %d: %v != %v", i, a, z)
		}
		for j := range a.Attrs {
			if !a.Attrs[j].Equal(z.Attrs[j]) {
				t.Errorf("event %d attr %d: %v != %v", i, j, a.Attrs[j], z.Attrs[j])
			}
		}
	}
}

func TestRoundTripQuotingProperty(t *testing.T) {
	// Strings with commas, quotes and newlines must survive CSV.
	rng := rand.New(rand.NewSource(5))
	chars := []rune{'a', ',', '"', '\n', '\'', ' ', 'é'}
	schema := event.MustSchema(event.Field{Name: "S", Type: event.TypeString})
	for trial := 0; trial < 50; trial++ {
		rel := event.NewRelation(schema)
		for i := 0; i < 5; i++ {
			var sb strings.Builder
			for n := rng.Intn(6); n > 0; n-- {
				sb.WriteRune(chars[rng.Intn(len(chars))])
			}
			rel.MustAppend(event.Time(i), event.String(sb.String()))
		}
		var b strings.Builder
		if err := Write(&b, rel); err != nil {
			t.Fatal(err)
		}
		back, err := Read(strings.NewReader(b.String()), ReadOptions{})
		if err != nil {
			t.Fatalf("%v\n%q", err, b.String())
		}
		for i := 0; i < rel.Len(); i++ {
			want := rel.Event(i).Attrs[0].Str()
			// encoding/csv normalises \r\n; our generator avoids \r so
			// values must round-trip exactly.
			if got := back.Event(i).Attrs[0].Str(); got != want {
				t.Fatalf("trial %d event %d: %q != %q", trial, i, got, want)
			}
		}
	}
}

func TestLoadSaveFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.csv")
	rel := paperdata.Relation()
	if err := SaveFile(path, rel); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path, ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != rel.Len() {
		t.Errorf("Len = %d", back.Len())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.csv"), ReadOptions{}); err == nil {
		t.Errorf("missing file should fail")
	}
}

// TestWriteNDJSON pins the ingest line format byte for byte on the
// paper's first two events: this is the contract with sesd's
// POST /events parser.
func TestWriteNDJSON(t *testing.T) {
	rel := paperdata.Relation()
	var b strings.Builder
	if err := WriteNDJSON(&b, rel); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(b.String(), "\n"), "\n")
	if len(lines) != rel.Len() {
		t.Fatalf("%d lines, want %d", len(lines), rel.Len())
	}
	want := []string{
		`{"time":1278147600,"attrs":{"ID":1,"L":"C","U":"mg","V":1672.5}}`,
		`{"time":1278151200,"attrs":{"ID":1,"L":"B","U":"WHO-Tox","V":0}}`,
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d:\ngot:  %s\nwant: %s", i+1, lines[i], w)
		}
	}
}

func TestSaveNDJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "events.ndjson")
	rel := paperdata.Relation()
	if err := SaveNDJSONFile(path, rel); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteNDJSON(&b, rel); err != nil {
		t.Fatal(err)
	}
	data, err := readFileString(path)
	if err != nil {
		t.Fatal(err)
	}
	if data != b.String() {
		t.Errorf("file content differs from WriteNDJSON output")
	}
	if err := SaveNDJSONFile(filepath.Join(dir, "no/such/dir.ndjson"), rel); err == nil {
		t.Errorf("bad path should fail")
	}
}

// readFileString loads a file as a string.
func readFileString(path string) (string, error) {
	data, err := os.ReadFile(path)
	return string(data), err
}

// Package store persists event relations as typed CSV files and loads
// them back. It is the repository's substitute for the Oracle 11.1
// database the paper's evaluation reads its event relation from
// (Section 5.1): the algorithm only needs a time-ordered relation it
// can iterate event by event, which a CSV-backed in-memory relation
// provides without changing any algorithmic behaviour.
//
// File format: standard CSV. The header names each column as
// "name:type" with type ∈ {string, int, float, time}. Exactly one
// column must have type "time"; it carries the event's occurrence time
// as an integer in the canonical seconds domain or as an RFC 3339
// timestamp. All other columns form the relation schema in header
// order.
//
//	T:time,ID:int,L:string,V:float,U:string
//	1278147600,1,C,1672.5,mg
//	2010-07-03T10:00:00Z,1,B,0,WHO-Tox
//
// Relations can also be exported as newline-delimited JSON in the sesd
// server's ingest format (WriteNDJSON), so generated datasets can be
// POSTed to a running server unchanged.
package store

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/event"
)

// timeType is the header type name of the temporal column.
const timeType = "time"

// ReadOptions configure Read.
type ReadOptions struct {
	// Sort, when true, sorts the loaded relation by time instead of
	// failing on out-of-order rows.
	Sort bool
}

// Read loads a CSV event relation from r.
func Read(r io.Reader, opts ReadOptions) (*event.Relation, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 0 // all records must match the header width
	cr.TrimLeadingSpace = true

	header, err := cr.Read()
	if err == io.EOF {
		return nil, fmt.Errorf("store: empty input, missing header")
	}
	if err != nil {
		return nil, fmt.Errorf("store: reading header: %w", err)
	}

	timeCol := -1
	var fields []event.Field
	var fieldCols []int
	for i, h := range header {
		name, typ, ok := strings.Cut(strings.TrimSpace(h), ":")
		if !ok {
			return nil, fmt.Errorf("store: header column %d (%q) is not in name:type form", i+1, h)
		}
		name = strings.TrimSpace(name)
		typ = strings.TrimSpace(typ)
		if strings.EqualFold(typ, timeType) {
			if timeCol >= 0 {
				return nil, fmt.Errorf("store: multiple time columns (%q and %q)", header[timeCol], h)
			}
			timeCol = i
			continue
		}
		t, err := event.ParseType(typ)
		if err != nil {
			return nil, fmt.Errorf("store: header column %q: %w", h, err)
		}
		fields = append(fields, event.Field{Name: name, Type: t})
		fieldCols = append(fieldCols, i)
	}
	if timeCol < 0 {
		return nil, fmt.Errorf("store: no time column (declare one as \"name:time\")")
	}
	schema, err := event.NewSchema(fields...)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	rel := event.NewRelation(schema)
	vals := make([]event.Value, len(fields))
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
		t, err := parseTime(rec[timeCol])
		if err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
		for j, col := range fieldCols {
			v, err := event.ParseValue(fields[j].Type, rec[col])
			if err != nil {
				return nil, fmt.Errorf("store: line %d, column %q: %w", line, fields[j].Name, err)
			}
			vals[j] = v
		}
		if err := rel.Append(t, vals...); err != nil {
			return nil, fmt.Errorf("store: line %d: %w", line, err)
		}
	}
	if !rel.Sorted() {
		if !opts.Sort {
			return nil, fmt.Errorf("store: events are not in time order (pass ReadOptions.Sort to sort on load)")
		}
		rel.SortByTime()
	}
	return rel, nil
}

// parseTime accepts an integer in the canonical seconds domain or an
// RFC 3339 timestamp.
func parseTime(s string) (event.Time, error) {
	s = strings.TrimSpace(s)
	if i, err := strconv.ParseInt(s, 10, 64); err == nil {
		return event.Time(i), nil
	}
	if ts, err := time.Parse(time.RFC3339, s); err == nil {
		return event.FromGoTime(ts), nil
	}
	return 0, fmt.Errorf("invalid time %q (want integer seconds or RFC 3339)", s)
}

// Write saves the relation as CSV with the time column first, named
// "T".
func Write(w io.Writer, rel *event.Relation) error {
	cw := csv.NewWriter(w)
	schema := rel.Schema()
	header := make([]string, 0, schema.NumFields()+1)
	header = append(header, "T:"+timeType)
	for i := 0; i < schema.NumFields(); i++ {
		f := schema.Field(i)
		header = append(header, f.Name+":"+f.Type.String())
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	rec := make([]string, len(header))
	for i := 0; i < rel.Len(); i++ {
		e := rel.Event(i)
		rec[0] = strconv.FormatInt(int64(e.Time), 10)
		for j, v := range e.Attrs {
			rec[j+1] = v.Encode()
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// WriteNDJSON writes the relation as newline-delimited JSON in the
// ingest format of the sesd server: one {"time": T, "attrs": {name:
// value}} object per line, so a generated dataset can be POSTed to
// /events unchanged.
func WriteNDJSON(w io.Writer, rel *event.Relation) error {
	bw := bufio.NewWriter(w)
	schema := rel.Schema()
	enc := json.NewEncoder(bw)
	line := struct {
		Time  int64                  `json:"time"`
		Attrs map[string]interface{} `json:"attrs"`
	}{Attrs: make(map[string]interface{}, schema.NumFields())}
	for i := 0; i < rel.Len(); i++ {
		e := rel.Event(i)
		line.Time = int64(e.Time)
		for j := 0; j < schema.NumFields(); j++ {
			f := schema.Field(j)
			switch f.Type {
			case event.TypeString:
				line.Attrs[f.Name] = e.Attrs[j].Str()
			case event.TypeInt:
				line.Attrs[f.Name] = e.Attrs[j].Int64()
			default:
				line.Attrs[f.Name] = e.Attrs[j].Float64()
			}
		}
		if err := enc.Encode(line); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// SaveNDJSONFile writes the relation to the named file in the NDJSON
// ingest format of WriteNDJSON.
func SaveNDJSONFile(path string, rel *event.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := WriteNDJSON(f, rel); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadFile reads a CSV event relation from the named file.
func LoadFile(path string, opts ReadOptions) (*event.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return Read(f, opts)
}

// SaveFile writes the relation to the named file, creating or
// truncating it.
func SaveFile(path string, rel *event.Relation) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := Write(f, rel); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

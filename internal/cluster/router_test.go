package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/automaton"
	"repro/internal/cluster"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/server"
)

// The query constrains every variable to one partition-key value, the
// shape the paper's partition-ordered semantics places: events of one
// key meet only each other, so per-partition evaluation loses nothing.
const clusterQuery = "PATTERN PERMUTE(c, d) THEN (b) WHERE c.L = 'C' AND d.L = 'D' AND b.L = 'B' AND c.ID = d.ID AND d.ID = b.ID WITHIN 40"

func clusterSchema() *event.Schema {
	return event.MustSchema(
		event.Field{Name: "ID", Type: event.TypeInt},
		event.Field{Name: "L", Type: event.TypeString},
		event.Field{Name: "V", Type: event.TypeFloat},
	)
}

// genStream builds a time-monotone random event stream, returned both
// as NDJSON ingest lines and as the equivalent relation (whose
// insertion-order sequence numbers equal the stream positions the
// router and a single node assign).
func genStream(t *testing.T, rng *rand.Rand, n int) ([]string, *event.Relation) {
	t.Helper()
	rel := event.NewRelation(clusterSchema())
	labels := []string{"C", "D", "B", "X"}
	lines := make([]string, 0, n)
	tm := int64(0)
	for i := 0; i < n; i++ {
		tm += int64(rng.Intn(3))
		id := int64(rng.Intn(6))
		l := labels[rng.Intn(len(labels))]
		v := float64(rng.Intn(40)) * 0.25
		lines = append(lines, fmt.Sprintf(`{"time":%d,"attrs":{"ID":%d,"L":%q,"V":%s}}`,
			tm, id, l, strconv.FormatFloat(v, 'g', -1, 64)))
		if err := rel.Append(event.Time(tm), event.Int(id), event.String(l), event.Float(v)); err != nil {
			t.Fatal(err)
		}
	}
	return lines, rel
}

// testNode is one in-process sesd node behind a fault-injection shim:
// refuse turns every request into a 503 fenced refusal, down aborts
// the connection (a transport error at the router).
type testNode struct {
	srv    *server.Server
	ts     *httptest.Server
	refuse atomic.Bool
	down   atomic.Bool
}

func (n *testNode) wrap(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.down.Load() {
			panic(http.ErrAbortHandler)
		}
		if n.refuse.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"server: fenced","state":"fenced"}`+"\n")
			return
		}
		h.ServeHTTP(w, r)
	})
}

// testCluster is an nparts-partition cluster of in-process nodes with
// a router in front. With standbys, each partition's standby URL hits
// the same underlying server as its leader — a zero-lag warm standby,
// so failover exercises the router's retry/flip logic without running
// real WAL shipping (the CI cluster-failover job covers that with the
// actual binaries).
type testCluster struct {
	router   *cluster.Router
	rts      *httptest.Server
	leaders  []*testNode
	standbys []*testNode // nil entries without standbys
	reg      *obs.Registry
}

func startCluster(t *testing.T, nparts, slots int, withStandby bool) *testCluster {
	t.Helper()
	schema := clusterSchema()
	m := &cluster.Membership{Key: "ID", Slots: slots}
	tc := &testCluster{reg: obs.NewRegistry()}
	per := slots / nparts
	for p := 0; p < nparts; p++ {
		lo, hi := p*per, (p+1)*per
		if p == nparts-1 {
			hi = slots
		}
		part := cluster.Partition{ID: p, Lo: lo, Hi: hi}
		srv, err := server.New(server.Config{
			Schema:    schema,
			Ownership: part.Ownership("ID", slots),
		})
		if err != nil {
			t.Fatal(err)
		}
		leader := &testNode{srv: srv}
		leader.ts = httptest.NewServer(leader.wrap(srv.Handler()))
		t.Cleanup(leader.ts.Close)
		t.Cleanup(srv.Close)
		part.Leader = cluster.Node{URL: leader.ts.URL}
		tc.leaders = append(tc.leaders, leader)
		if withStandby {
			standby := &testNode{srv: srv}
			standby.ts = httptest.NewServer(standby.wrap(srv.Handler()))
			t.Cleanup(standby.ts.Close)
			part.Standby = cluster.Node{URL: standby.ts.URL}
			tc.standbys = append(tc.standbys, standby)
		} else {
			tc.standbys = append(tc.standbys, nil)
		}
		m.Partitions = append(m.Partitions, part)
	}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Membership: m,
		Schema:     schema,
		Registry:   tc.reg,
		Retry: resilience.RetryPolicy{
			Initial:     time.Millisecond,
			Max:         20 * time.Millisecond,
			MaxAttempts: 200,
		},
		HealthEvery: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)
	tc.router = router
	tc.rts = httptest.NewServer(router.Handler())
	t.Cleanup(tc.rts.Close)
	return tc
}

func postJSON(t *testing.T, url, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func registerQuery(t *testing.T, base, id, q string) {
	t.Helper()
	spec := fmt.Sprintf(`{"id":%q,"query":%q,"filter":true}`, id, q)
	resp := postJSON(t, base+"/queries", spec)
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register on %s: %s: %s", base, resp.Status, raw)
	}
}

func ingestLines(t *testing.T, base string, lines []string) {
	t.Helper()
	resp := postJSON(t, base+"/events", strings.Join(lines, "\n")+"\n")
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest on %s: %s: %s", base, resp.Status, raw)
	}
}

func readMatches(t *testing.T, base, id string, follow bool) []byte {
	t.Helper()
	u := fmt.Sprintf("%s/queries/%s/matches?follow=%t", base, id, follow)
	resp, err := http.Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matches on %s: %s: %s", base, resp.Status, raw)
	}
	return raw
}

// referenceMatches evaluates the query offline over the relation —
// what `sesmatch -json` prints — one rendered match line per entry.
func referenceMatches(t *testing.T, query string, rel *event.Relation) []byte {
	t.Helper()
	auto := compileQuery(t, query)
	matches, _, err := engine.Run(auto, rel, engine.WithFilter(true))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, m := range matches {
		b, err := engine.MatchJSON(m, rel.Schema())
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// startSingle runs one whole-keyspace node over the same stream — the
// byte-identity reference the merged stream is measured against.
func startSingle(t *testing.T) (*server.Server, string) {
	t.Helper()
	srv, err := server.New(server.Config{Schema: clusterSchema()})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts.URL
}

func drainAll(t *testing.T, tc *testCluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	for _, n := range tc.leaders {
		if err := n.srv.Drain(ctx); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
}

// TestRouterMergedStreamIdentity is the tentpole property: across
// partition counts, the router's merged match stream is byte-identical
// to a single sesd node evaluating the whole stream, and both equal
// the offline evaluation.
func TestRouterMergedStreamIdentity(t *testing.T) {
	for _, nparts := range []int{1, 2, 4} {
		nparts := nparts
		t.Run(fmt.Sprintf("partitions=%d", nparts), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(77 + nparts)))
			lines, rel := genStream(t, rng, 400)

			single, singleURL := startSingle(t)
			registerQuery(t, singleURL, "q", clusterQuery)

			tc := startCluster(t, nparts, 16, false)
			registerQuery(t, tc.rts.URL, "q", clusterQuery)

			// Several batches, unevenly sized, so sub-batch splitting and
			// the in-order queues see more than one delivery.
			for off := 0; off < len(lines); {
				n := 1 + rng.Intn(120)
				if off+n > len(lines) {
					n = len(lines) - off
				}
				ingestLines(t, singleURL, lines[off:off+n])
				ingestLines(t, tc.rts.URL, lines[off:off+n])
				off += n
			}

			ctx := context.Background()
			if err := single.Drain(ctx); err != nil {
				t.Fatal(err)
			}
			drainAll(t, tc)

			want := readMatches(t, singleURL, "q", false)
			got := readMatches(t, tc.rts.URL, "q", false)
			if !bytes.Equal(want, got) {
				t.Fatalf("merged stream differs from single node:\nsingle:\n%s\nmerged:\n%s", want, got)
			}
			if len(bytes.TrimSpace(want)) == 0 {
				t.Fatalf("degenerate dataset: no matches")
			}
			ref := referenceMatches(t, clusterQuery, rel)
			if !bytes.Equal(want, ref) {
				t.Fatalf("single node differs from offline evaluation:\nsingle:\n%s\noffline:\n%s", want, ref)
			}
		})
	}
}

// TestRouterFollowStreamIdentity attaches a follow-mode merged reader
// before any event arrives: live releases (gated by the quiet-partition
// watermark) plus the drain flush must reproduce the same stream.
func TestRouterFollowStreamIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	lines, _ := genStream(t, rng, 300)

	single, singleURL := startSingle(t)
	registerQuery(t, singleURL, "q", clusterQuery)

	tc := startCluster(t, 2, 16, false)
	registerQuery(t, tc.rts.URL, "q", clusterQuery)

	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(tc.rts.URL + "/queries/q/matches?follow=1")
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		done <- result{raw, err}
	}()

	for off := 0; off < len(lines); {
		n := 1 + rng.Intn(60)
		if off+n > len(lines) {
			n = len(lines) - off
		}
		ingestLines(t, singleURL, lines[off:off+n])
		ingestLines(t, tc.rts.URL, lines[off:off+n])
		off += n
	}
	time.Sleep(200 * time.Millisecond) // let live releases happen while streams are open

	ctx := context.Background()
	if err := single.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	drainAll(t, tc)

	res := <-done
	if res.err != nil {
		t.Fatalf("follow stream: %v", res.err)
	}
	want := readMatches(t, singleURL, "q", false)
	if !bytes.Equal(want, res.body) {
		t.Fatalf("follow-mode merged stream differs from single node:\nsingle:\n%s\nmerged:\n%s", want, res.body)
	}
	if len(bytes.TrimSpace(want)) == 0 {
		t.Fatalf("degenerate dataset: no matches")
	}
}

// TestRouterFailover kills a leader mid-stream (transport aborts) and
// fences the other a batch later: ingest must fail over to the
// standbys, the follow-mode merged stream must survive the reader
// reconnects, and the final bytes must equal the single-node stream.
func TestRouterFailover(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lines, _ := genStream(t, rng, 300)

	single, singleURL := startSingle(t)
	registerQuery(t, singleURL, "q", clusterQuery)

	tc := startCluster(t, 2, 16, true)
	registerQuery(t, tc.rts.URL, "q", clusterQuery)

	type result struct {
		body []byte
		err  error
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Get(tc.rts.URL + "/queries/q/matches?follow=1")
		if err != nil {
			done <- result{nil, err}
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		done <- result{raw, err}
	}()

	third := len(lines) / 3
	ingestLines(t, singleURL, lines[:third])
	ingestLines(t, tc.rts.URL, lines[:third])

	// Partition 0's leader dies (connections abort); partition 1's
	// leader is fenced by a newer epoch. Both must fail over.
	tc.leaders[0].down.Store(true)
	tc.leaders[1].refuse.Store(true)

	ingestLines(t, singleURL, lines[third:2*third])
	ingestLines(t, tc.rts.URL, lines[third:2*third])
	ingestLines(t, singleURL, lines[2*third:])
	ingestLines(t, tc.rts.URL, lines[2*third:])

	if v, ok := tc.reg.Value("ses_router_partition_retries_total"); !ok || v == 0 {
		t.Errorf("ses_router_partition_retries_total = %d, %t; want > 0 after failover", v, ok)
	}

	ctx := context.Background()
	if err := single.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	drainAll(t, tc)

	res := <-done
	if res.err != nil {
		t.Fatalf("follow stream: %v", res.err)
	}
	want := readMatches(t, singleURL, "q", false)
	if !bytes.Equal(want, res.body) {
		t.Fatalf("post-failover merged stream differs from single node:\nsingle:\n%s\nmerged:\n%s", want, res.body)
	}
	if len(bytes.TrimSpace(want)) == 0 {
		t.Fatalf("degenerate dataset: no matches")
	}
}

// TestRouterRetryDedupe replays the ambiguous-failure case: the node
// ingests a sub-batch but the router never sees the acknowledgment.
// The retried delivery must be dropped by the node's sequence dedupe,
// not double-ingested.
func TestRouterRetryDedupe(t *testing.T) {
	schema := clusterSchema()
	own := &cluster.Ownership{Key: "ID", Slots: 8, Lo: 0, Hi: 8}
	srv, err := server.New(server.Config{Schema: schema, Ownership: own})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	h := srv.Handler()
	var failedOnce atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/events" && !failedOnce.Swap(true) {
			// Deliver the batch, then report a gateway failure: the
			// router cannot know whether it landed.
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, r)
			if rec.Code != http.StatusOK {
				t.Errorf("shadow delivery failed: %d %s", rec.Code, rec.Body)
			}
			w.WriteHeader(http.StatusBadGateway)
			return
		}
		h.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)

	m := &cluster.Membership{Key: "ID", Slots: 8, Partitions: []cluster.Partition{
		{ID: 0, Lo: 0, Hi: 8, Leader: cluster.Node{URL: ts.URL}},
	}}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Membership: m,
		Schema:     schema,
		Retry:      resilience.RetryPolicy{Initial: time.Millisecond, Max: 5 * time.Millisecond, MaxAttempts: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)

	rng := rand.New(rand.NewSource(3))
	lines, _ := genStream(t, rng, 20)
	res, err := router.IngestNDJSON([]byte(strings.Join(lines, "\n") + "\n"))
	if err != nil {
		t.Fatalf("IngestNDJSON: %v", err)
	}
	if res.Ingested+res.Deduped != len(lines) {
		t.Fatalf("ingested %d + deduped %d != %d events", res.Ingested, res.Deduped, len(lines))
	}
	if res.Deduped != len(lines) {
		t.Errorf("deduped %d, want the whole retried batch (%d)", res.Deduped, len(lines))
	}
	if got := srv.LastSeq(); got != int64(len(lines)-1) {
		t.Errorf("node LastSeq = %d, want %d", got, len(lines)-1)
	}
	if got := srv.Deduped(); got != int64(len(lines)) {
		t.Errorf("node Deduped = %d, want %d", got, len(lines))
	}
}

// TestRouterRejectsPreSequencedLines pins that clients cannot inject
// global sequence numbers past the router.
func TestRouterRejectsPreSequencedLines(t *testing.T) {
	tc := startCluster(t, 1, 4, false)
	_, err := tc.router.IngestNDJSON([]byte(`{"seq":3,"time":1,"attrs":{"ID":1,"L":"C","V":0}}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "assigned by the router") {
		t.Fatalf("pre-sequenced line accepted: %v", err)
	}
}

// TestRouterMisdirectedIsPermanent pins that a topology mismatch (node
// owns a different slice than the membership says) fails fast instead
// of burning the whole retry budget.
func TestRouterMisdirectedIsPermanent(t *testing.T) {
	schema := clusterSchema()
	// The node owns only slot range [0,1) of 8; the membership claims
	// it owns everything, so most events land outside its slice.
	srv, err := server.New(server.Config{Schema: schema,
		Ownership: &cluster.Ownership{Key: "ID", Slots: 8, Lo: 0, Hi: 1}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	m := &cluster.Membership{Key: "ID", Slots: 8, Partitions: []cluster.Partition{
		{ID: 0, Lo: 0, Hi: 8, Leader: cluster.Node{URL: ts.URL}},
	}}
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Membership: m,
		Schema:     schema,
		Retry:      resilience.RetryPolicy{Initial: time.Millisecond, Max: 2 * time.Millisecond, MaxAttempts: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := router.Start(context.Background()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(router.Close)

	rng := rand.New(rand.NewSource(5))
	lines, _ := genStream(t, rng, 40)
	start := time.Now()
	_, err = router.IngestNDJSON([]byte(strings.Join(lines, "\n") + "\n"))
	if err == nil {
		t.Fatal("misdirected batch accepted")
	}
	if !strings.Contains(err.Error(), "Misdirected") {
		t.Fatalf("error does not surface the 421: %v", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Fatalf("misdirected delivery retried for %s; 421 must be permanent", d)
	}
}

// TestRouterMergedStats pins the distributed aggregate path: per-node
// fold documents merge into one stats document whose groups carry the
// cross-partition totals, with HAVING applied after the merge.
func TestRouterMergedStats(t *testing.T) {
	const aggQuery = "PATTERN (b) WHERE b.L = 'B' WITHIN 5 AGGREGATE count, sum(b.V), avg(b.V) PER PARTITION ID HAVING count >= 1"
	rng := rand.New(rand.NewSource(11))
	lines, _ := genStream(t, rng, 200)

	single, singleURL := startSingle(t)
	registerQuery(t, singleURL, "agg", aggQuery)
	tc := startCluster(t, 2, 16, false)
	registerQuery(t, tc.rts.URL, "agg", aggQuery)

	ingestLines(t, singleURL, lines)
	ingestLines(t, tc.rts.URL, lines)
	ctx := context.Background()
	if err := single.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	drainAll(t, tc)

	fetch := func(base string) map[string]string {
		resp, err := http.Get(base + "/queries/agg/stats")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stats on %s: %s: %s", base, resp.Status, raw)
		}
		// Group order may differ (single node folds in stream order, the
		// merge appends in partition order) and only the merged form
		// omits the per-group fold version, so compare the rendered
		// values by group key.
		var doc struct {
			Groups []struct {
				Key    json.RawMessage `json:"key"`
				Values json.RawMessage `json:"values"`
			} `json:"groups"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("stats on %s does not parse: %v\n%s", base, err, raw)
		}
		groups := map[string]string{}
		for _, g := range doc.Groups {
			groups[string(g.Key)] = string(g.Values)
		}
		return groups
	}
	want, got := fetch(singleURL), fetch(tc.rts.URL)
	if len(want) == 0 {
		t.Fatal("degenerate dataset: no aggregate groups")
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("group %s: merged %s, single %s", k, got[k], v)
		}
	}
	if len(got) != len(want) {
		t.Errorf("merged has %d groups, single has %d", len(got), len(want))
	}
}

func compileQuery(t *testing.T, q string) *automaton.Automaton {
	t.Helper()
	p, err := query.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	variants, err := pattern.ExpandOptionals(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(variants) != 1 {
		t.Fatalf("query expands to %d variants, want 1", len(variants))
	}
	auto, err := automaton.Compile(variants[0], clusterSchema())
	if err != nil {
		t.Fatal(err)
	}
	return auto
}

// Package cluster implements the partition-routed cluster tier: a
// static membership file assigns slices of a hashed keyspace to
// {leader, standby} sesd pairs, a router (see Router) splits ingest
// batches by partition key and fans them to the owning nodes, and
// per-partition match streams merge back into one deterministic
// stream. The paper's partition-ordered semantics make the partition
// key a semantics-preserving placement unit: events of one key meet
// only each other, so evaluating each key slice on its own node and
// merging emitted matches by (window start, sequence) reproduces the
// single-node stream byte for byte.
package cluster

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/event"
)

// Ownership is one node's slice of the hashed keyspace: partition-key
// values hashing to slots in [Lo, Hi) belong to this node. A server
// configured with an Ownership rejects events outside its slice with
// a routable error, which is what makes node boundaries explicit and
// rebalancing possible.
type Ownership struct {
	// Key is the partition attribute name (must exist in the schema).
	Key string
	// Slots is the size of the hash ring the keyspace is divided into.
	Slots int
	// Lo and Hi bound the owned slot range, half-open [Lo, Hi).
	Lo, Hi int
}

// Validate checks the slice's internal consistency.
func (o *Ownership) Validate() error {
	switch {
	case o.Key == "":
		return fmt.Errorf("cluster: ownership requires a partition key")
	case o.Slots <= 0:
		return fmt.Errorf("cluster: ownership requires a positive slot count, got %d", o.Slots)
	case o.Lo < 0 || o.Hi > o.Slots || o.Lo >= o.Hi:
		return fmt.Errorf("cluster: owned slot range [%d,%d) is not a non-empty subrange of [0,%d)", o.Lo, o.Hi, o.Slots)
	}
	return nil
}

// Owns reports whether a slot falls in the owned range.
func (o *Ownership) Owns(slot int) bool { return slot >= o.Lo && slot < o.Hi }

// Slot hashes a partition-key value onto the ring. The hash is
// FNV-1a 64 over the value's kind tag and canonical encoding, so it
// is stable across processes, platforms and restarts — the property
// that lets router and nodes agree on placement without coordination.
func (o *Ownership) Slot(v event.Value) int { return SlotOf(v, o.Slots) }

// SlotOf hashes a partition-key value to a slot in [0, slots).
func SlotOf(v event.Value, slots int) int {
	h := fnv.New64a()
	h.Write([]byte{byte(v.Kind())})
	io.WriteString(h, v.Encode())
	return int(h.Sum64() % uint64(slots))
}

// Node is one sesd process in the membership: its base URL.
type Node struct {
	URL string
}

// Partition is one keyspace slice and the nodes serving it.
type Partition struct {
	ID      int
	Lo, Hi  int  // owned slot range, half-open
	Leader  Node // initial leader
	Standby Node // warm standby; URL empty when the partition has none
}

// Ownership returns the partition's slice as a server-side Ownership.
func (p Partition) Ownership(key string, slots int) *Ownership {
	return &Ownership{Key: key, Slots: slots, Lo: p.Lo, Hi: p.Hi}
}

// Membership is the parsed static cluster topology.
type Membership struct {
	// Key is the partition attribute events are hashed by.
	Key string
	// Slots is the hash ring size shared by every partition.
	Slots int
	// Partitions lists the keyspace slices in ascending slot order.
	Partitions []Partition
}

// PartitionFor returns the partition owning a slot, nil when no
// partition covers it (only possible on an invalid membership).
func (m *Membership) PartitionFor(slot int) *Partition {
	i := sort.Search(len(m.Partitions), func(i int) bool { return m.Partitions[i].Hi > slot })
	if slot < 0 || i == len(m.Partitions) || m.Partitions[i].Lo > slot {
		return nil
	}
	return &m.Partitions[i]
}

// Validate checks a membership's structural invariants — a key, a
// positive ring size, exact coverage of [0, Slots) by the partitions
// in order, unique ids and unique node addresses. Memberships built
// by ParseMembership are always valid; this guards hand-constructed
// ones (and keeps the router honest about what it assumes).
func (m *Membership) Validate() error {
	if m.Key == "" {
		return fmt.Errorf("cluster: membership has no partition key")
	}
	if m.Slots <= 0 {
		return fmt.Errorf("cluster: membership wants a positive slot count, got %d", m.Slots)
	}
	if len(m.Partitions) == 0 {
		return fmt.Errorf("cluster: membership has no partitions")
	}
	ids := map[int]bool{}
	addrs := map[string]bool{}
	next := 0
	for _, p := range m.Partitions {
		if ids[p.ID] {
			return fmt.Errorf("cluster: duplicate partition id %d", p.ID)
		}
		ids[p.ID] = true
		if p.Lo != next || p.Hi <= p.Lo || p.Hi > m.Slots {
			return fmt.Errorf("cluster: partition %d slots [%d,%d) do not continue coverage at slot %d within %d slots",
				p.ID, p.Lo, p.Hi, next, m.Slots)
		}
		next = p.Hi
		for _, u := range []string{p.Leader.URL, p.Standby.URL} {
			if u == "" {
				if p.Leader.URL == "" {
					return fmt.Errorf("cluster: partition %d has no leader", p.ID)
				}
				continue
			}
			if addrs[u] {
				return fmt.Errorf("cluster: node address %q serves twice", u)
			}
			addrs[u] = true
		}
	}
	if next != m.Slots {
		return fmt.Errorf("cluster: slots %d-%d are covered by no partition", next, m.Slots-1)
	}
	return nil
}

// Partition returns the partition with the given id, or nil.
func (m *Membership) Partition(id int) *Partition {
	for i := range m.Partitions {
		if m.Partitions[i].ID == id {
			return &m.Partitions[i]
		}
	}
	return nil
}

// lineErr renders a membership diagnostic anchored to its line.
func lineErr(line int, format string, args ...interface{}) error {
	return fmt.Errorf("cluster: membership line %d: %s", line, fmt.Sprintf(format, args...))
}

// ParseMembership parses a membership file. The format is
// line-oriented:
//
//	# comment
//	key ID
//	slots 16
//	partition 0 slots 0-7 leader http://a:8080 standby http://b:8080
//	partition 1 slots 8-15 leader http://c:8080
//
// `key` names the partition attribute, `slots` sizes the hash ring,
// and each `partition` line assigns one half-open-on-the-right,
// inclusive-as-written slot range ("0-7" owns slots 0..7) to a leader
// and an optional standby. Validation is strict and every diagnostic
// carries its line number: the ranges must cover [0, slots) exactly —
// no overlap, no gap — partition ids must be unique, and no node
// address may serve twice.
func ParseMembership(r io.Reader) (*Membership, error) {
	m := &Membership{}
	addrLine := map[string]int{}
	idLine := map[int]int{}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "key":
			if len(fields) != 2 {
				return nil, lineErr(lineNo, "key takes exactly one attribute name")
			}
			if m.Key != "" {
				return nil, lineErr(lineNo, "duplicate key directive (already %q)", m.Key)
			}
			m.Key = fields[1]
		case "slots":
			if len(fields) != 2 {
				return nil, lineErr(lineNo, "slots takes exactly one count")
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n <= 0 {
				return nil, lineErr(lineNo, "slots wants a positive integer, got %q", fields[1])
			}
			if m.Slots != 0 {
				return nil, lineErr(lineNo, "duplicate slots directive (already %d)", m.Slots)
			}
			m.Slots = n
		case "partition":
			p, err := parsePartitionLine(fields, lineNo)
			if err != nil {
				return nil, err
			}
			if prev, ok := idLine[p.ID]; ok {
				return nil, lineErr(lineNo, "duplicate partition id %d (first declared on line %d)", p.ID, prev)
			}
			idLine[p.ID] = lineNo
			for _, url := range []string{p.Leader.URL, p.Standby.URL} {
				if url == "" {
					continue
				}
				if prev, ok := addrLine[url]; ok {
					return nil, lineErr(lineNo, "node address %q already serves on line %d", url, prev)
				}
				addrLine[url] = lineNo
			}
			m.Partitions = append(m.Partitions, p)
		default:
			return nil, lineErr(lineNo, "unknown directive %q (want key, slots or partition)", fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cluster: reading membership: %w", err)
	}
	if m.Key == "" {
		return nil, fmt.Errorf("cluster: membership declares no key directive")
	}
	if m.Slots == 0 {
		return nil, fmt.Errorf("cluster: membership declares no slots directive")
	}
	if len(m.Partitions) == 0 {
		return nil, fmt.Errorf("cluster: membership declares no partitions")
	}
	sort.Slice(m.Partitions, func(i, j int) bool { return m.Partitions[i].Lo < m.Partitions[j].Lo })
	next := 0
	for _, p := range m.Partitions {
		switch {
		case p.Lo < next:
			return nil, fmt.Errorf("cluster: membership line %d: partition %d slots [%d,%d) overlap an earlier partition",
				idLine[p.ID], p.ID, p.Lo, p.Hi)
		case p.Lo > next:
			return nil, fmt.Errorf("cluster: membership line %d: slots %d-%d are covered by no partition",
				idLine[p.ID], next, p.Lo-1)
		case p.Hi > m.Slots:
			return nil, fmt.Errorf("cluster: membership line %d: partition %d slots [%d,%d) exceed the declared %d slots",
				idLine[p.ID], p.ID, p.Lo, p.Hi, m.Slots)
		}
		next = p.Hi
	}
	if next < m.Slots {
		return nil, fmt.Errorf("cluster: slots %d-%d are covered by no partition", next, m.Slots-1)
	}
	return m, nil
}

// parsePartitionLine parses one `partition <id> slots <lo>-<hi>
// leader <url> [standby <url>]` line.
func parsePartitionLine(fields []string, lineNo int) (Partition, error) {
	var p Partition
	if len(fields) < 6 {
		return p, lineErr(lineNo, "partition wants `partition <id> slots <lo>-<hi> leader <url> [standby <url>]`")
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil || id < 0 {
		return p, lineErr(lineNo, "partition id wants a non-negative integer, got %q", fields[1])
	}
	p.ID = id
	if fields[2] != "slots" {
		return p, lineErr(lineNo, "expected `slots`, got %q", fields[2])
	}
	lo, hi, ok := strings.Cut(fields[3], "-")
	if !ok {
		return p, lineErr(lineNo, "slot range wants `<lo>-<hi>`, got %q", fields[3])
	}
	p.Lo, err = strconv.Atoi(lo)
	if err != nil || p.Lo < 0 {
		return p, lineErr(lineNo, "slot range low bound wants a non-negative integer, got %q", lo)
	}
	last, err := strconv.Atoi(hi)
	if err != nil || last < p.Lo {
		return p, lineErr(lineNo, "slot range high bound wants an integer >= %d, got %q", p.Lo, hi)
	}
	p.Hi = last + 1 // written inclusive, stored half-open
	if fields[4] != "leader" {
		return p, lineErr(lineNo, "expected `leader`, got %q", fields[4])
	}
	if err := checkURL(fields[5]); err != nil {
		return p, lineErr(lineNo, "leader %v", err)
	}
	p.Leader = Node{URL: strings.TrimSuffix(fields[5], "/")}
	switch {
	case len(fields) == 6:
	case len(fields) == 8 && fields[6] == "standby":
		if err := checkURL(fields[7]); err != nil {
			return p, lineErr(lineNo, "standby %v", err)
		}
		p.Standby = Node{URL: strings.TrimSuffix(fields[7], "/")}
		if p.Standby.URL == p.Leader.URL {
			return p, lineErr(lineNo, "standby address %q duplicates the leader", p.Standby.URL)
		}
	default:
		return p, lineErr(lineNo, "trailing fields: want at most `standby <url>` after the leader")
	}
	return p, nil
}

// checkURL validates a node address.
func checkURL(s string) error {
	if !strings.HasPrefix(s, "http://") && !strings.HasPrefix(s, "https://") {
		return fmt.Errorf("address %q wants an http:// or https:// URL", s)
	}
	return nil
}

// LoadMembership parses the membership file at path.
func LoadMembership(path string) (*Membership, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	defer f.Close()
	m, err := ParseMembership(f)
	if err != nil {
		return nil, fmt.Errorf("%w (in %s)", err, path)
	}
	return m, nil
}

package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Handler returns the router's HTTP API — the same surface a single
// sesd node serves, so clients move between the two by changing the
// base URL:
//
//	POST   /events               NDJSON batch ingest, split by partition
//	POST   /queries              register on every partition
//	GET    /queries              query list (all partitions are kept in
//	                             lockstep; partition 0 answers)
//	GET    /queries/{id}         merged query state (counters summed)
//	DELETE /queries/{id}         unregister on every partition
//	GET    /queries/{id}/matches deterministic merged match stream
//	GET    /queries/{id}/stats   merged aggregate document
//	GET    /healthz              cluster view: every node's role, epoch
//	                             and sequence/time high-water
//
// The match stream accepts the node's ?from=N and ?follow=1
// parameters; offsets address the merged stream. With a metrics
// registry configured, /metrics and /debug/ are mounted as well.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /events", r.handleIngest)
	mux.HandleFunc("POST /queries", r.handleAddQuery)
	mux.HandleFunc("GET /queries", r.handleListQueries)
	mux.HandleFunc("GET /queries/{id}", r.handleGetQuery)
	mux.HandleFunc("DELETE /queries/{id}", r.handleRemoveQuery)
	mux.HandleFunc("GET /queries/{id}/matches", r.handleMatches)
	mux.HandleFunc("GET /queries/{id}/stats", r.handleStats)
	mux.HandleFunc("GET /healthz", r.handleHealthz)
	if r.registry != nil {
		dm := obs.DebugMux(r.registry)
		mux.Handle("/metrics", dm)
		mux.Handle("/debug/", dm)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, "%s\n", mustJSON(v))
}

func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		return []byte(`{"error":"encoding response"}`)
	}
	return b
}

// routeErrStatus maps a routing error to the status the router
// reports: a node refusal keeps its status (503 stays 503 with the
// node's state so clients back off the same way), everything else is
// a 502 — the router could not complete the fan-out.
func routeErrStatus(err error) (int, map[string]string) {
	var re *routedError
	if errors.As(err, &re) {
		body := map[string]string{"error": err.Error()}
		if re.state != "" {
			body["state"] = re.state
		}
		return re.status, body
	}
	return http.StatusBadGateway, map[string]string{"error": err.Error()}
}

// maxIngestBody bounds one routed ingest batch (64 MiB).
const maxIngestBody = 64 << 20

func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, maxIngestBody))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	res, err := r.IngestNDJSON(body)
	if err != nil {
		var re *routedError
		if errors.As(err, &re) {
			status, b := routeErrStatus(err)
			if status == http.StatusServiceUnavailable {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, status, b)
			return
		}
		// Decode-side errors are the client's.
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (r *Router) handleAddQuery(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(io.LimitReader(req.Body, 1<<20))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	path := "/queries"
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	resps, err := r.fanOut(req.Context(), http.MethodPost, path, body)
	if err != nil {
		status, b := routeErrStatus(err)
		writeJSON(w, status, b)
		return
	}
	for _, pr := range resps {
		if pr.Status != http.StatusCreated {
			// Registration is idempotent per node (duplicates answer
			// 409), so the operator can retry after fixing the cause;
			// partitions that already accepted the query keep it.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(pr.Status)
			w.Write(pr.Body)
			return
		}
	}
	info, err := mergeQueryDocs(resps)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (r *Router) handleListQueries(w http.ResponseWriter, req *http.Request) {
	resp, err := r.doPartition(req.Context(), r.parts[0], http.MethodGet, "/queries", nil)
	if err != nil {
		status, b := routeErrStatus(err)
		writeJSON(w, status, b)
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

func (r *Router) handleGetQuery(w http.ResponseWriter, req *http.Request) {
	path := "/queries/" + url.PathEscape(req.PathValue("id"))
	resps, err := r.fanOut(req.Context(), http.MethodGet, path, nil)
	if err != nil {
		status, b := routeErrStatus(err)
		writeJSON(w, status, b)
		return
	}
	for _, pr := range resps {
		if pr.Status != http.StatusOK {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(pr.Status)
			w.Write(pr.Body)
			return
		}
	}
	info, err := mergeQueryDocs(resps)
	if err != nil {
		writeJSON(w, http.StatusBadGateway, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (r *Router) handleRemoveQuery(w http.ResponseWriter, req *http.Request) {
	path := "/queries/" + url.PathEscape(req.PathValue("id"))
	resps, err := r.fanOut(req.Context(), http.MethodDelete, path, nil)
	if err != nil {
		status, b := routeErrStatus(err)
		writeJSON(w, status, b)
		return
	}
	for _, pr := range resps {
		if pr.Status != http.StatusNoContent {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(pr.Status)
			w.Write(pr.Body)
			return
		}
	}
	w.WriteHeader(http.StatusNoContent)
}

func (r *Router) handleMatches(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	var from int64
	if v := req.URL.Query().Get("from"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("invalid from offset %q", v)})
			return
		}
		from = n
	}
	follow := false
	switch v := req.URL.Query().Get("follow"); v {
	case "", "0", "false":
	case "1", "true":
		follow = true
	default:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("invalid follow value %q", v)})
		return
	}
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	flusher, _ := w.(http.Flusher)
	headerSent := false
	emit := func(off int64, line []byte) error {
		if !headerSent {
			w.WriteHeader(http.StatusOK)
			headerSent = true
		}
		if sse {
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", off, line)
		} else {
			w.Write(line)
			w.Write([]byte{'\n'})
		}
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	}
	err := r.StreamMatches(req.Context(), id, from, follow, emit)
	if err != nil && !headerSent && req.Context().Err() == nil {
		status, b := routeErrStatus(err)
		writeJSON(w, status, b)
		return
	}
	if !headerSent {
		w.WriteHeader(http.StatusOK)
	}
	if err == nil && sse {
		fmt.Fprintf(w, "event: end\ndata: {}\n\n")
	}
	if flusher != nil {
		flusher.Flush()
	}
}

func (r *Router) handleStats(w http.ResponseWriter, req *http.Request) {
	if v := req.URL.Query().Get("follow"); v != "" && v != "0" && v != "false" {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "the router serves stats snapshots only (follow is per node)"})
		return
	}
	doc, status, err := r.MergeStats(req.Context(), req.PathValue("id"))
	if err != nil {
		s, b := routeErrStatus(err)
		writeJSON(w, s, b)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(doc)
	if len(doc) > 0 && doc[len(doc)-1] != '\n' {
		w.Write([]byte{'\n'})
	}
}

// handleHealthz renders the router's cluster view: per partition, the
// slot range, each node's last-probed role, fencing epoch and
// sequence/time high-water, and which node currently takes writes.
func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	type nodeView struct {
		URL      string `json:"url"`
		Up       bool   `json:"up"`
		Role     string `json:"role"`
		Epoch    int64  `json:"epoch"`
		LastSeq  int64  `json:"last_seq"`
		LastTime *int64 `json:"last_time,omitempty"`
	}
	type partView struct {
		ID     int        `json:"id"`
		Slots  string     `json:"slots"`
		Active string     `json:"active"`
		Nodes  []nodeView `json:"nodes"`
	}
	body := struct {
		Status     string     `json:"status"`
		Key        string     `json:"key"`
		SlotCount  int        `json:"slot_count"`
		NextSeq    int64      `json:"next_seq"`
		Partitions []partView `json:"partitions"`
	}{Status: "ok", Key: r.m.Key, SlotCount: r.m.Slots, NextSeq: r.nextSeq.Load()}
	for _, rp := range r.parts {
		pv := partView{
			ID:     rp.ID,
			Slots:  fmt.Sprintf("%d-%d", rp.Lo, rp.Hi-1),
			Active: rp.nodes[rp.active.Load()].url,
		}
		for _, ns := range rp.nodes {
			nv := nodeView{
				URL:     ns.url,
				Up:      ns.up.Load(),
				Role:    ns.role.Load().(string),
				Epoch:   ns.epoch.Load(),
				LastSeq: ns.lastSeq.Load(),
			}
			if ns.hasTime.Load() {
				t := ns.lastTime.Load()
				nv.LastTime = &t
			}
			pv.Nodes = append(pv.Nodes, nv)
		}
		body.Partitions = append(body.Partitions, pv)
	}
	writeJSON(w, http.StatusOK, body)
}

package cluster

import (
	"strings"
	"testing"
)

// FuzzParseMembership drives the membership parser with arbitrary
// inputs. The contract under fuzzing: never panic, and every accepted
// membership passes Validate — the parser's diagnostics and the
// structural validator must agree on what a legal topology is.
func FuzzParseMembership(f *testing.F) {
	seeds := []string{
		goodMembership,
		"key ID\nslots 1\npartition 0 slots 0-0 leader http://a:1\n",
		"# only comments\n\n",
		"key ID\nslots 16\npartition 1 slots 8-15 leader http://c:1\npartition 0 slots 0-7 leader http://a:1\n",
		"key ID\nslots 8\npartition 0 slots 0-4 leader http://a:1\npartition 1 slots 3-7 leader http://b:1\n",
		"key ID\nslots 8\npartition 0 slots 0-2 leader http://a:1\npartition 1 slots 5-7 leader http://b:1\n",
		"key ID\nslots 8\npartition 0 slots 0-7 leader http://a:1 standby http://a:1\n",
		"key ID\nslots 8\npartition 0 slots 0-7 leader http://a:1 standby http://b:1 extra x\n",
		"key ID\nkey U\n",
		"slots 99999999999999999999\n",
		"partition -1 slots 0-1 leader http://a:1\n",
		"partition 0 slots 1-0 leader http://a:1\n",
		"partition 0 slots 0-1 leader ftp://a:1\n",
		"key ID\nslots 8\npartition 0 slots 0-7 leader http://a:1/\n",
		"key\tID\r\nslots 8\r\npartition 0 slots 0-7 leader http://a:1\r\n",
		"bogus directive\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		m, err := ParseMembership(strings.NewReader(src))
		if err != nil {
			if m != nil {
				t.Fatalf("ParseMembership returned both a membership and error %v", err)
			}
			if !strings.HasPrefix(err.Error(), "cluster: ") {
				t.Fatalf("diagnostic %q lacks the cluster: prefix", err)
			}
			return
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("parser accepted a membership Validate rejects: %v\ninput:\n%s", err, src)
		}
		for slot := 0; slot < m.Slots; slot++ {
			if m.PartitionFor(slot) == nil {
				t.Fatalf("accepted membership leaves slot %d unowned\ninput:\n%s", slot, src)
			}
		}
	})
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// Router fronts a partitioned sesd cluster: it accepts the same NDJSON
// batch ingest as a single node, splits each batch by the partition
// key, stamps every event with a cluster-global sequence number, and
// fans the sub-batches to the owning nodes — retrying against a
// partition's standby when its leader is unavailable. Query
// registration fans to all partitions, and the read endpoints merge
// the per-partition match streams and aggregate states back into one.
//
// The global sequence numbers are what make the merged match stream
// deterministic: every event carries the position it held in the
// router's arrival order, nodes reject regressions and deduplicate
// retried deliveries by it, and the match merge orders matches by
// (window start, minimum bound sequence) — a total order, because two
// matches from different partitions can never bind the same event.
type Router struct {
	m      *Membership
	schema *event.Schema
	keyIdx int
	client *http.Client
	retry  resilience.RetryPolicy

	// nextSeq is the next global sequence number to assign. It is only
	// mutated under ingestMu (assignment must be atomic with enqueueing
	// so per-partition sub-batches arrive in sequence order), but reads
	// for lag gauges are lock-free.
	nextSeq  atomic.Int64
	ingestMu sync.Mutex

	parts       []*routePartition
	drain       chan struct{} // closed by Close; stops senders and health loops
	wg          sync.WaitGroup
	closed      atomic.Bool
	healthEvery time.Duration

	registry  *obs.Registry
	batches   *obs.Counter // ses_router_batches_total
	events    *obs.Counter // ses_router_events_total
	retries   *obs.Counter // ses_router_partition_retries_total
	mergedOut *obs.Counter // ses_router_matches_merged_total
}

// routePartition is the router's live state for one partition: the
// static assignment plus which node currently accepts writes and what
// the health prober last saw on each node.
type routePartition struct {
	Partition
	queue chan *subBatch

	// active is 0 (leader) or 1 (standby) — the node index writes
	// currently go to. The sender flips it when the active node turns
	// out fenced, read-only or unreachable.
	active atomic.Int32

	nodes []*nodeState
}

// nodeState is the prober's view of one node.
type nodeState struct {
	url      string
	up       atomic.Bool
	role     atomic.Value // string
	epoch    atomic.Int64
	lastSeq  atomic.Int64
	lastTime atomic.Int64
	hasTime  atomic.Bool
}

// urls returns the partition's node URLs in [leader, standby] order.
func (rp *routePartition) urls() []string {
	out := []string{rp.Leader.URL}
	if rp.Standby.URL != "" {
		out = append(out, rp.Standby.URL)
	}
	return out
}

// subBatch is one partition's slice of an ingest batch, queued for
// ordered delivery.
type subBatch struct {
	body    []byte
	events  int
	maxSeq  int64
	maxTime int64
	done    chan struct{}
	err     error
	deduped int
}

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Membership is the cluster layout (required, validated).
	Membership *Membership
	// Schema is the event schema all nodes serve (required; the
	// partition key must be one of its attributes).
	Schema *event.Schema
	// InFlight bounds the queued-but-unacknowledged sub-batches per
	// partition; ingest blocks when the window is full. Default 8.
	InFlight int
	// Client is the HTTP client used for all node traffic; a default
	// client without timeout is used when nil (match streams are
	// long-lived).
	Client *http.Client
	// Retry shapes the per-delivery retry/failover loop. The zero
	// value retries with 10ms..2s exponential backoff, 20 attempts.
	Retry resilience.RetryPolicy
	// Registry receives the router's metrics when non-nil.
	Registry *obs.Registry
	// HealthEvery is the node health polling interval. Default 500ms.
	HealthEvery time.Duration
}

// NewRouter validates the options and creates a router. Call Start to
// probe the cluster's sequence high-water and begin serving.
func NewRouter(opts RouterOptions) (*Router, error) {
	if opts.Membership == nil {
		return nil, fmt.Errorf("cluster: router needs a membership")
	}
	if err := opts.Membership.Validate(); err != nil {
		return nil, err
	}
	if opts.Schema == nil {
		return nil, fmt.Errorf("cluster: router needs an event schema")
	}
	keyIdx, ok := opts.Schema.Index(opts.Membership.Key)
	if !ok {
		return nil, fmt.Errorf("cluster: partition key %q is not a schema attribute (schema: %s)",
			opts.Membership.Key, opts.Schema)
	}
	if opts.InFlight <= 0 {
		opts.InFlight = 8
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.Retry.MaxAttempts == 0 {
		opts.Retry.MaxAttempts = 20
	}
	if opts.HealthEvery <= 0 {
		opts.HealthEvery = 500 * time.Millisecond
	}
	r := &Router{
		m:      opts.Membership,
		schema: opts.Schema,
		keyIdx: keyIdx,
		client: opts.Client,
		retry:  opts.Retry,
		drain:  make(chan struct{}),
	}
	for _, p := range r.m.Partitions {
		rp := &routePartition{Partition: p, queue: make(chan *subBatch, opts.InFlight)}
		for _, u := range rp.urls() {
			ns := &nodeState{url: u}
			ns.role.Store("unknown")
			rp.nodes = append(rp.nodes, ns)
		}
		r.parts = append(r.parts, rp)
	}
	r.healthEvery = opts.HealthEvery
	if opts.Registry != nil {
		r.attachMetrics(opts.Registry)
	}
	return r, nil
}

// attachMetrics binds the router's observability series.
func (r *Router) attachMetrics(reg *obs.Registry) {
	r.registry = reg
	r.batches = reg.Counter("ses_router_batches_total",
		"ingest batches accepted and fanned out by the router")
	r.events = reg.Counter("ses_router_events_total",
		"events sequenced and routed to a partition")
	r.retries = reg.Counter("ses_router_partition_retries_total",
		"sub-batch deliveries retried after a node refused or failed")
	r.mergedOut = reg.Counter("ses_router_matches_merged_total",
		"match lines released by the deterministic merge")
	reg.GaugeFunc("ses_router_next_seq",
		"next global sequence number the router will assign",
		func() int64 { return r.nextSeq.Load() })
	for _, rp := range r.parts {
		for _, ns := range rp.nodes {
			ns := ns
			reg.GaugeFunc(obs.SeriesName("ses_router_node_up", "node", ns.url),
				"1 when the node answered its last health probe",
				func() int64 {
					if ns.up.Load() {
						return 1
					}
					return 0
				})
			reg.GaugeFunc(obs.SeriesName("ses_router_node_lag", "node", ns.url),
				"events assigned by the router but not yet acknowledged by the node",
				func() int64 {
					lag := r.nextSeq.Load() - 1 - ns.lastSeq.Load()
					if lag < 0 || !ns.up.Load() {
						return 0
					}
					return lag
				})
		}
	}
}

// Start probes every partition for its sequence high-water — so a
// restarted router resumes the global numbering after the highest
// sequence any node has persisted — and starts the per-partition
// sender and health loops. ctx bounds the probe only.
func (r *Router) Start(ctx context.Context) error {
	var probe int64
	for _, rp := range r.parts {
		seq, err := r.probePartition(ctx, rp)
		if err != nil {
			return fmt.Errorf("cluster: probing partition %d: %w", rp.ID, err)
		}
		if seq+1 > probe {
			probe = seq + 1
		}
	}
	r.nextSeq.Store(probe)
	for _, rp := range r.parts {
		rp := rp
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.runSender(rp)
		}()
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			r.runHealth(rp)
		}()
	}
	return nil
}

// Close stops the sender and health loops. Queued sub-batches are
// failed, not delivered.
func (r *Router) Close() {
	if r.closed.Swap(true) {
		return
	}
	close(r.drain)
	r.wg.Wait()
}

// NextSeq returns the next global sequence number the router will
// assign (i.e. the number of events routed so far, after Start).
func (r *Router) NextSeq() int64 { return r.nextSeq.Load() }

// probePartition asks a partition for its persisted sequence
// high-water, preferring the leader but accepting the standby's
// answer when the leader is down (the standby trails the leader, so a
// fresh router may re-assign sequences the dead leader already issued;
// the node-side regression check rejects them and the operator heals
// the partition by failing over, which the health loop then observes).
func (r *Router) probePartition(ctx context.Context, rp *routePartition) (int64, error) {
	var lastErr error
	for _, u := range rp.urls() {
		h, err := r.fetchHealth(ctx, u)
		if err != nil {
			lastErr = err
			continue
		}
		return h.LastSeq, nil
	}
	return 0, lastErr
}

// routerHealth is the node /healthz shape the router consumes.
type routerHealth struct {
	Status   string `json:"status"`
	Role     string `json:"role"`
	Epoch    int64  `json:"epoch"`
	LastSeq  int64  `json:"last_seq"`
	LastTime *int64 `json:"last_time"`
	Partn    *struct {
		Key   string `json:"key"`
		Slots int    `json:"slots"`
		Lo    int    `json:"lo"`
		Hi    int    `json:"hi"`
	} `json:"partition"`
}

func (r *Router) fetchHealth(ctx context.Context, url string) (*routerHealth, error) {
	ctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("%s/healthz: %s", url, resp.Status)
	}
	var h routerHealth
	if err := json.Unmarshal(body, &h); err != nil {
		return nil, fmt.Errorf("%s/healthz: %w", url, err)
	}
	return &h, nil
}

// runHealth polls the partition's nodes, keeping the per-node gauges
// and the epoch-aware role view fresh. A node reporting a higher
// fencing epoch than its peer is authoritative about leadership; the
// sender consults this view to pick its first target after a failure.
func (r *Router) runHealth(rp *routePartition) {
	tick := time.NewTicker(r.healthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.drain:
			return
		case <-tick.C:
		}
		for _, ns := range rp.nodes {
			h, err := r.fetchHealth(context.Background(), ns.url)
			if err != nil {
				ns.up.Store(false)
				continue
			}
			ns.up.Store(true)
			ns.role.Store(h.Role)
			ns.epoch.Store(h.Epoch)
			ns.lastSeq.Store(h.LastSeq)
			if h.LastTime != nil {
				ns.lastTime.Store(*h.LastTime)
				ns.hasTime.Store(true)
			}
		}
		// Follow the fencing epochs: if the non-active node is a leader
		// with an epoch at least as high as the active node's, it won an
		// election (or the active node died and its standby promoted) —
		// switch writes over without waiting for a delivery failure.
		if len(rp.nodes) == 2 {
			act := rp.active.Load()
			other := 1 - act
			if rp.nodes[other].up.Load() &&
				rp.nodes[other].role.Load() == "leader" &&
				rp.nodes[other].epoch.Load() >= rp.nodes[act].epoch.Load() &&
				(!rp.nodes[act].up.Load() || rp.nodes[act].role.Load() != "leader") {
				rp.active.CompareAndSwap(act, other)
			}
		}
	}
}

// runSender delivers the partition's queued sub-batches in order.
func (r *Router) runSender(rp *routePartition) {
	for {
		select {
		case <-r.drain:
			// Fail whatever is still queued so ingest callers unblock.
			for {
				select {
				case sb := <-rp.queue:
					sb.err = fmt.Errorf("cluster: router closed")
					close(sb.done)
				default:
					return
				}
			}
		case sb := <-rp.queue:
			sb.err = r.deliver(rp, sb)
			close(sb.done)
		}
	}
}

// routedError is a node refusal the router should fail over on: the
// node is up but not accepting writes (follower, fenced, draining).
type routedError struct {
	status int
	state  string
	msg    string
}

func (e *routedError) Error() string {
	return fmt.Sprintf("node refused: %s (state %q): %s", http.StatusText(e.status), e.state, e.msg)
}

// postEvents delivers one sub-batch body to a node.
func (r *Router) postEvents(ctx context.Context, url string, body []byte) (ingested, deduped int, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/events", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := r.client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return 0, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
			State string `json:"state"`
		}
		_ = json.Unmarshal(raw, &e)
		return 0, 0, &routedError{status: resp.StatusCode, state: e.State, msg: e.Error}
	}
	var ok struct {
		Ingested int `json:"ingested"`
		Deduped  int `json:"deduped"`
	}
	if err := json.Unmarshal(raw, &ok); err != nil {
		return 0, 0, fmt.Errorf("%s/events: %w", url, err)
	}
	return ok.Ingested, ok.Deduped, nil
}

// deliver sends one sub-batch to the partition, retrying with backoff
// and failing over between leader and standby on refusals and
// transport errors. Duplicate deliveries are safe: nodes drop events
// at or below their sequence high-water, so a retry after an
// ambiguous failure (the request may or may not have landed) cannot
// double-ingest.
func (r *Router) deliver(rp *routePartition, sb *subBatch) error {
	first := true
	ctx := context.Background()
	err := resilience.Retry(ctx, r.retry, func() error {
		if r.closed.Load() {
			return resilience.Permanent(fmt.Errorf("cluster: router closed"))
		}
		if !first && r.retries != nil {
			r.retries.Inc()
		}
		act := rp.active.Load()
		if first {
			first = false
		}
		url := rp.nodes[act].url
		_, deduped, err := r.postEvents(ctx, url, sb.body)
		if err == nil {
			sb.deduped = deduped
			rp.nodes[act].lastSeq.Store(sb.maxSeq)
			rp.nodes[act].lastTime.Store(sb.maxTime)
			rp.nodes[act].hasTime.Store(true)
			return nil
		}
		var re *routedError
		if ok := asRoutedError(err, &re); ok {
			switch {
			case re.status == http.StatusServiceUnavailable:
				// follower / fenced / draining: flip to the peer (it may
				// need a promotion beat first; the backoff covers that).
				if len(rp.nodes) == 2 {
					rp.active.CompareAndSwap(act, 1-act)
				}
				return err
			case re.status == http.StatusMisdirectedRequest:
				// 421 means this node owns a different slice than the
				// membership file says — a topology mismatch no retry
				// fixes.
				return resilience.Permanent(err)
			case re.status >= 400 && re.status < 500:
				return resilience.Permanent(err)
			}
			return err
		}
		// Transport error: the node may be gone; try the peer next.
		if len(rp.nodes) == 2 {
			rp.active.CompareAndSwap(act, 1-act)
		}
		return err
	})
	return err
}

// asRoutedError unwraps a *routedError (errors.As without the import
// dance around the retry wrapper).
func asRoutedError(err error, out **routedError) bool {
	for err != nil {
		if re, ok := err.(*routedError); ok {
			*out = re
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// IngestResult summarises one routed batch.
type IngestResult struct {
	Ingested   int `json:"ingested"`
	Deduped    int `json:"deduped,omitempty"`
	Partitions int `json:"partitions"`
}

// IngestNDJSON routes one NDJSON batch: it validates and decodes every
// line (the same block decoder nodes use), rejects lines that already
// carry a "seq" (sequences are the router's to assign), stamps each
// event with the next global sequence number, splits the batch by the
// partition key's hash slot and queues one sub-batch per owning
// partition, in arrival order. It blocks until every involved
// partition acknowledged its slice (or delivery failed terminally).
func (r *Router) IngestNDJSON(body []byte) (IngestResult, error) {
	var res IngestResult
	lines, events, err := r.decodeBatch(body)
	if err != nil {
		return res, err
	}
	if len(events) == 0 {
		return res, nil
	}

	type slice struct {
		buf     bytes.Buffer
		events  int
		maxSeq  int64
		maxTime int64
	}
	slices := make(map[int]*slice)

	// Sequence assignment and enqueueing are atomic: two concurrent
	// batches must not interleave their sequence ranges out of order
	// inside one partition's queue, because nodes treat a sequence
	// regression within a batch as an error and an already-seen
	// sequence as a duplicate to drop.
	r.ingestMu.Lock()
	for i := range events {
		slot := SlotOf(events[i].Attrs[r.keyIdx], r.m.Slots)
		p := r.m.PartitionFor(slot)
		if p == nil {
			r.ingestMu.Unlock()
			return res, fmt.Errorf("cluster: no partition owns slot %d", slot)
		}
		sl := slices[p.ID]
		if sl == nil {
			sl = &slice{}
			slices[p.ID] = sl
		}
		seq := r.nextSeq.Add(1) - 1
		sl.buf.WriteString(`{"seq":`)
		sl.buf.WriteString(strconv.FormatInt(seq, 10))
		sl.buf.WriteByte(',')
		sl.buf.Write(lines[i][1:]) // the line is a JSON object; splice after '{'
		sl.buf.WriteByte('\n')
		sl.events++
		sl.maxSeq = seq
		if t := int64(events[i].Time); t > sl.maxTime {
			sl.maxTime = t
		}
	}
	var pending []*subBatch
	var perrs []error
	for pid, sl := range slices {
		sb := &subBatch{
			body:    sl.buf.Bytes(),
			events:  sl.events,
			maxSeq:  sl.maxSeq,
			maxTime: sl.maxTime,
			done:    make(chan struct{}),
		}
		rp := r.partitionByID(pid)
		select {
		case rp.queue <- sb:
			pending = append(pending, sb)
		case <-r.drain:
			perrs = append(perrs, fmt.Errorf("cluster: router closed"))
		}
	}
	r.ingestMu.Unlock()

	for _, sb := range pending {
		<-sb.done
		if sb.err != nil {
			perrs = append(perrs, sb.err)
			continue
		}
		res.Ingested += sb.events - sb.deduped
		res.Deduped += sb.deduped
		res.Partitions++
	}
	if len(perrs) > 0 {
		return res, perrs[0]
	}
	if r.batches != nil {
		r.batches.Inc()
		r.events.Add(int64(len(events)))
	}
	return res, nil
}

// partitionByID returns the router state for a partition id.
func (r *Router) partitionByID(id int) *routePartition {
	for _, rp := range r.parts {
		if rp.ID == id {
			return rp
		}
	}
	return nil
}

// decodeBatch splits and decodes the NDJSON body, returning the
// trimmed raw lines alongside the decoded events (index-aligned).
// Lines already carrying a "seq" are rejected.
func (r *Router) decodeBatch(body []byte) ([][]byte, []event.Event, error) {
	dec := engine.NewBlockDecoder(r.schema)
	var lines [][]byte
	lineNo := 0
	for len(body) > 0 {
		var line []byte
		if i := bytes.IndexByte(body, '\n'); i >= 0 {
			line, body = body[:i], body[i+1:]
		} else {
			line, body = body, nil
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		lines = append(lines, line)
		if !dec.Add(lineNo, line) {
			break
		}
	}
	events, err := dec.Finish()
	if err != nil {
		return nil, nil, err
	}
	for i := range events {
		if events[i].Seq >= 0 {
			return nil, nil, fmt.Errorf("line %d: carries a \"seq\"; global sequence numbers are assigned by the router", i+1)
		}
		if len(lines[i]) == 0 || lines[i][0] != '{' {
			return nil, nil, fmt.Errorf("line %d: not a JSON object", i+1)
		}
	}
	return lines, events, nil
}

package cluster

import (
	"strings"
	"testing"

	"repro/internal/event"
)

const goodMembership = `# two partitions, one with a standby
key ID
slots 16
partition 0 slots 0-7 leader http://a:8080 standby http://b:8080
partition 1 slots 8-15 leader http://c:8080
`

func TestParseMembership(t *testing.T) {
	m, err := ParseMembership(strings.NewReader(goodMembership))
	if err != nil {
		t.Fatalf("ParseMembership: %v", err)
	}
	if m.Key != "ID" || m.Slots != 16 {
		t.Fatalf("got key %q slots %d, want ID 16", m.Key, m.Slots)
	}
	if len(m.Partitions) != 2 {
		t.Fatalf("got %d partitions, want 2", len(m.Partitions))
	}
	p0 := m.Partitions[0]
	if p0.ID != 0 || p0.Lo != 0 || p0.Hi != 8 {
		t.Errorf("partition 0 = %+v, want id 0 slots [0,8)", p0)
	}
	if p0.Leader.URL != "http://a:8080" || p0.Standby.URL != "http://b:8080" {
		t.Errorf("partition 0 nodes = %+v", p0)
	}
	p1 := m.Partitions[1]
	if p1.ID != 1 || p1.Lo != 8 || p1.Hi != 16 || p1.Standby.URL != "" {
		t.Errorf("partition 1 = %+v, want id 1 slots [8,16) no standby", p1)
	}
	if err := m.Validate(); err != nil {
		t.Errorf("Validate on parsed membership: %v", err)
	}
}

func TestParseMembershipSortsPartitions(t *testing.T) {
	src := `key ID
slots 8
partition 1 slots 4-7 leader http://c:1
partition 0 slots 0-3 leader http://a:1
`
	m, err := ParseMembership(strings.NewReader(src))
	if err != nil {
		t.Fatalf("ParseMembership: %v", err)
	}
	if m.Partitions[0].Lo != 0 || m.Partitions[1].Lo != 4 {
		t.Fatalf("partitions not sorted by slot range: %+v", m.Partitions)
	}
}

// TestParseMembershipDiagnostics drives every rejection path and pins
// the diagnostics to their line numbers — the membership file is
// hand-edited by operators, so "line 4" beats "somewhere".
func TestParseMembershipDiagnostics(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error
	}{
		{"empty", "", "declares no key"},
		{"no slots", "key ID\npartition 0 slots 0-1 leader http://a:1\n", "declares no slots"},
		{"no partitions", "key ID\nslots 4\n", "declares no partitions"},
		{"duplicate key", "key ID\nkey U\n", `line 2: duplicate key directive (already "ID")`},
		{"duplicate slots", "slots 4\nslots 8\n", "line 2: duplicate slots directive (already 4)"},
		{"bad slots", "slots zero\n", `line 1: slots wants a positive integer, got "zero"`},
		{"negative slots", "slots -4\n", "line 1: slots wants a positive integer"},
		{"unknown directive", "key ID\nnode http://a:1\n", `line 2: unknown directive "node"`},
		{"short partition", "partition 0 slots 0-1\n", "line 1: partition wants `partition <id> slots"},
		{"bad id", "partition x slots 0-1 leader http://a:1\n", `line 1: partition id wants a non-negative integer, got "x"`},
		{"bad range", "partition 0 slots 0..1 leader http://a:1\n", "line 1: slot range wants `<lo>-<hi>`"},
		{"inverted range", "partition 0 slots 3-1 leader http://a:1\n", "line 1: slot range high bound wants an integer >= 3"},
		{"bad leader url", "partition 0 slots 0-1 leader a:1\n", `line 1: leader address "a:1" wants an http:// or https:// URL`},
		{"bad standby url", "partition 0 slots 0-1 leader http://a:1 standby b:1\n", "line 1: standby address"},
		{"standby equals leader", "partition 0 slots 0-1 leader http://a:1 standby http://a:1\n", "line 1: standby address \"http://a:1\" duplicates the leader"},
		{"trailing fields", "partition 0 slots 0-1 leader http://a:1 follower http://b:1\n", "line 1: trailing fields"},
		{"duplicate id", "key ID\nslots 8\npartition 0 slots 0-3 leader http://a:1\npartition 0 slots 4-7 leader http://b:1\n",
			"line 4: duplicate partition id 0 (first declared on line 3)"},
		{"duplicate address", "key ID\nslots 8\npartition 0 slots 0-3 leader http://a:1\npartition 1 slots 4-7 leader http://a:1\n",
			`line 4: node address "http://a:1" already serves on line 3`},
		{"standby reuse across lines", "key ID\nslots 8\npartition 0 slots 0-3 leader http://a:1 standby http://s:1\npartition 1 slots 4-7 leader http://b:1 standby http://s:1\n",
			`line 4: node address "http://s:1" already serves on line 3`},
		{"overlap", "key ID\nslots 8\npartition 0 slots 0-4 leader http://a:1\npartition 1 slots 3-7 leader http://b:1\n",
			"line 4: partition 1 slots [3,8) overlap an earlier partition"},
		{"gap", "key ID\nslots 8\npartition 0 slots 0-2 leader http://a:1\npartition 1 slots 5-7 leader http://b:1\n",
			"line 4: slots 3-4 are covered by no partition"},
		{"exceeds ring", "key ID\nslots 8\npartition 0 slots 0-9 leader http://a:1\n",
			"line 3: partition 0 slots [0,10) exceed the declared 8 slots"},
		{"tail gap", "key ID\nslots 8\npartition 0 slots 0-5 leader http://a:1\n",
			"slots 6-7 are covered by no partition"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseMembership(strings.NewReader(tc.src))
			if err == nil {
				t.Fatalf("ParseMembership accepted:\n%s", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestMembershipValidate(t *testing.T) {
	good := func() *Membership {
		return &Membership{Key: "ID", Slots: 8, Partitions: []Partition{
			{ID: 0, Lo: 0, Hi: 4, Leader: Node{URL: "http://a:1"}},
			{ID: 1, Lo: 4, Hi: 8, Leader: Node{URL: "http://b:1"}},
		}}
	}
	if err := good().Validate(); err != nil {
		t.Fatalf("valid membership rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Membership)
		want   string
	}{
		{"no key", func(m *Membership) { m.Key = "" }, "no partition key"},
		{"no slots", func(m *Membership) { m.Slots = 0 }, "positive slot count"},
		{"no partitions", func(m *Membership) { m.Partitions = nil }, "no partitions"},
		{"dup id", func(m *Membership) { m.Partitions[1].ID = 0 }, "duplicate partition id"},
		{"gap", func(m *Membership) { m.Partitions[1].Lo = 5 }, "do not continue coverage"},
		{"short", func(m *Membership) { m.Partitions[1].Hi = 7 }, "covered by no partition"},
		{"no leader", func(m *Membership) { m.Partitions[0].Leader.URL = "" }, "has no leader"},
		{"dup addr", func(m *Membership) { m.Partitions[1].Leader.URL = "http://a:1" }, "serves twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := good()
			tc.mutate(m)
			err := m.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want error containing %q", err, tc.want)
			}
		})
	}
}

func TestPartitionFor(t *testing.T) {
	m, err := ParseMembership(strings.NewReader(goodMembership))
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 16; slot++ {
		p := m.PartitionFor(slot)
		if p == nil {
			t.Fatalf("slot %d unowned", slot)
		}
		want := 0
		if slot >= 8 {
			want = 1
		}
		if p.ID != want {
			t.Errorf("slot %d owned by partition %d, want %d", slot, p.ID, want)
		}
	}
	if p := m.PartitionFor(-1); p != nil {
		t.Errorf("slot -1 owned by %+v, want nil", p)
	}
	if p := m.PartitionFor(16); p != nil {
		t.Errorf("slot 16 owned by %+v, want nil", p)
	}
}

// TestSlotOfStable pins the hash placement: values must land on the
// same slot forever, or a membership written for one binary would
// route differently under the next.
func TestSlotOfStable(t *testing.T) {
	cases := []struct {
		v    event.Value
		want int
	}{
		{event.Int(0), SlotOf(event.Int(0), 16)},
		{event.Int(1), SlotOf(event.Int(1), 16)},
		{event.String("alpha"), SlotOf(event.String("alpha"), 16)},
		{event.Float(2.5), SlotOf(event.Float(2.5), 16)},
	}
	// Distinct kinds with equal encodings must not collide by accident
	// of construction: the kind tag feeds the hash.
	if SlotOf(event.Int(1), 1<<20) == SlotOf(event.String("1"), 1<<20) {
		t.Errorf("Int(1) and String(\"1\") hash identically; kind tag not hashed")
	}
	for _, tc := range cases {
		for i := 0; i < 3; i++ {
			if got := SlotOf(tc.v, 16); got != tc.want {
				t.Fatalf("SlotOf(%v) unstable: %d then %d", tc.v, tc.want, got)
			}
		}
		if got := SlotOf(tc.v, 16); got < 0 || got >= 16 {
			t.Fatalf("SlotOf(%v) = %d out of range", tc.v, got)
		}
	}
}

func TestOwnership(t *testing.T) {
	o := &Ownership{Key: "ID", Slots: 16, Lo: 4, Hi: 8}
	if err := o.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for _, bad := range []*Ownership{
		{Slots: 16, Lo: 0, Hi: 8},
		{Key: "ID", Lo: 0, Hi: 8},
		{Key: "ID", Slots: 16, Lo: 8, Hi: 8},
		{Key: "ID", Slots: 16, Lo: -1, Hi: 8},
		{Key: "ID", Slots: 16, Lo: 0, Hi: 17},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", bad)
		}
	}
	if o.Owns(3) || !o.Owns(4) || !o.Owns(7) || o.Owns(8) {
		t.Errorf("Owns boundary wrong for [4,8)")
	}
}

package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/engine"
	"repro/internal/resilience"
)

// This file merges per-partition read streams back into one. The core
// invariant: a match binds only events of one partition (patterns are
// evaluated per routed substream), and every event carries a
// router-assigned, globally unique sequence number. Ordering matches
// by (window start, minimum bound sequence) is therefore a total
// order across partitions — two matches can only tie on both
// components by binding the same first event, which puts them on the
// same partition, where the node's own emission order breaks the tie
// deterministically (the merge is stable per partition).

// matchKey is the merge sort key of one match line.
type matchKey struct {
	first  int64
	minSeq int64
}

func (k matchKey) less(o matchKey) bool {
	if k.first != o.first {
		return k.first < o.first
	}
	return k.minSeq < o.minSeq
}

// parseMatchKey extracts the sort key from a rendered match line.
func parseMatchKey(line []byte) (matchKey, error) {
	var m struct {
		First    int64 `json:"first"`
		Bindings []struct {
			Events []struct {
				Seq int64 `json:"seq"`
			} `json:"events"`
		} `json:"bindings"`
	}
	if err := json.Unmarshal(line, &m); err != nil {
		return matchKey{}, fmt.Errorf("cluster: match line does not parse: %w", err)
	}
	k := matchKey{first: m.First, minSeq: -1}
	for _, b := range m.Bindings {
		for _, e := range b.Events {
			if k.minSeq < 0 || e.Seq < k.minSeq {
				k.minSeq = e.Seq
			}
		}
	}
	if k.minSeq < 0 {
		return matchKey{}, fmt.Errorf("cluster: match line binds no events")
	}
	return k, nil
}

// doPartition performs one fanned-out request against a partition,
// failing over between its nodes like the ingest path. The caller owns
// the response body.
func (r *Router) doPartition(ctx context.Context, rp *routePartition, method, path string, body []byte) (*http.Response, error) {
	var resp *http.Response
	first := true
	err := resilience.Retry(ctx, r.retry, func() error {
		if !first && r.retries != nil {
			r.retries.Inc()
		}
		act := rp.active.Load()
		first = false
		var rd io.Reader
		if body != nil {
			rd = strings.NewReader(string(body))
		}
		req, err := http.NewRequestWithContext(ctx, method, rp.nodes[act].url+path, rd)
		if err != nil {
			return resilience.Permanent(err)
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		rsp, err := r.client.Do(req)
		if err != nil {
			if len(rp.nodes) == 2 {
				rp.active.CompareAndSwap(act, 1-act)
			}
			return err
		}
		if rsp.StatusCode == http.StatusServiceUnavailable {
			raw, _ := io.ReadAll(io.LimitReader(rsp.Body, 1<<16))
			rsp.Body.Close()
			var e struct {
				Error string `json:"error"`
				State string `json:"state"`
			}
			_ = json.Unmarshal(raw, &e)
			if len(rp.nodes) == 2 {
				rp.active.CompareAndSwap(act, 1-act)
			}
			return &routedError{status: rsp.StatusCode, state: e.State, msg: e.Error}
		}
		resp = rsp
		return nil
	})
	return resp, err
}

// PartitionResponse is one partition's reply to a fanned-out request.
type PartitionResponse struct {
	ID     int
	Status int
	Body   []byte
}

// fanOut performs the request against every partition and collects
// the replies in partition order.
func (r *Router) fanOut(ctx context.Context, method, path string, body []byte) ([]PartitionResponse, error) {
	out := make([]PartitionResponse, len(r.parts))
	for i, rp := range r.parts {
		resp, err := r.doPartition(ctx, rp, method, path, body)
		if err != nil {
			return nil, fmt.Errorf("cluster: partition %d: %w", rp.ID, err)
		}
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("cluster: partition %d: %w", rp.ID, err)
		}
		out[i] = PartitionResponse{ID: rp.ID, Status: resp.StatusCode, Body: raw}
	}
	return out, nil
}

// queryDoc is the slice of a node's query info the router consumes.
type queryDoc struct {
	ID               string `json:"id"`
	Query            string `json:"query"`
	Window           int64  `json:"window"`
	Events           int64  `json:"events"`
	Shed             int64  `json:"shed"`
	Matches          int64  `json:"matches"`
	QueueDepth       int    `json:"queue_depth"`
	ProcessedThrough *int64 `json:"processed_through"`
	Emitted          int64  `json:"emitted"`
	Done             bool   `json:"done"`
	CatchingUp       bool   `json:"catching_up"`
}

// MergedQueryInfo is the router's view of a fanned-out query.
type MergedQueryInfo struct {
	ID         string `json:"id"`
	Query      string `json:"query"`
	Window     int64  `json:"window"`
	Events     int64  `json:"events"`
	Shed       int64  `json:"shed"`
	Matches    int64  `json:"matches"`
	Done       bool   `json:"done"`
	Partitions int    `json:"partitions"`
}

// mergeQueryDocs folds per-partition query infos into the router view:
// counters sum, Done holds only when every partition is done.
func mergeQueryDocs(resps []PartitionResponse) (MergedQueryInfo, error) {
	var out MergedQueryInfo
	out.Done = true
	for i, pr := range resps {
		var d queryDoc
		if err := json.Unmarshal(pr.Body, &d); err != nil {
			return out, fmt.Errorf("cluster: partition %d query info: %w", pr.ID, err)
		}
		if i == 0 {
			out.ID, out.Query, out.Window = d.ID, d.Query, d.Window
		}
		out.Events += d.Events
		out.Shed += d.Shed
		out.Matches += d.Matches
		out.Done = out.Done && d.Done
	}
	out.Partitions = len(resps)
	return out, nil
}

// MergeStats fans the fold-form stats request to every partition and
// merges the documents (engine.MergeFoldStats): accumulators re-fold,
// HAVING applies to the merged groups.
func (r *Router) MergeStats(ctx context.Context, id string) ([]byte, int, error) {
	path := "/queries/" + url.PathEscape(id) + "/stats?fold=1"
	resps, err := r.fanOut(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, 0, err
	}
	docs := make([][]byte, 0, len(resps))
	for _, pr := range resps {
		if pr.Status != http.StatusOK {
			// Bubble the node's own error (404, 400 no AGGREGATE, ...).
			return pr.Body, pr.Status, nil
		}
		docs = append(docs, pr.Body)
	}
	merged, err := engine.MergeFoldStats(docs)
	if err != nil {
		return nil, 0, err
	}
	return merged, http.StatusOK, nil
}

// matchLine is one match stream line with its node-log offset.
type matchLine struct {
	off  int64
	data []byte
}

// partFeed is one partition's live match stream state inside a merge.
type partFeed struct {
	rp    *routePartition
	lines chan matchLine // log-order match lines from the reader
	err   chan error     // reader terminal state (nil = clean end)

	head    [][]byte   // buffered lines not yet released
	keys    []matchKey // sort keys, index-aligned with head
	ended   bool
	readErr error
	// consumed is the node-log offset the merge has taken lines up to
	// (exclusive): the node's matches below this offset are all either
	// buffered in head or already released. Compared against the
	// node's emitted-match count in the quiet check — a match the node
	// has emitted but the merge has not yet taken keeps the partition
	// non-quiet.
	consumed int64
}

// take pops one line from the feed's reader channel into head.
func (f *partFeed) take(ml matchLine) error {
	k, err := parseMatchKey(ml.data)
	if err != nil {
		return err
	}
	f.head = append(f.head, ml.data)
	f.keys = append(f.keys, k)
	f.consumed = ml.off + 1
	return nil
}

// streamPartitionMatches reads one partition's match stream as SSE,
// reconnecting (with node failover) at the last consumed offset until
// the stream ends cleanly or ctx is cancelled. Every line is sent to
// out in log order.
func (r *Router) streamPartitionMatches(ctx context.Context, rp *routePartition, id string, follow bool, out chan<- matchLine, done chan<- error) {
	next := int64(0)
	b := resilience.NewBackoff(r.retry)
	attempts := 0
	for {
		if err := ctx.Err(); err != nil {
			done <- err
			return
		}
		act := rp.active.Load()
		u := fmt.Sprintf("%s/queries/%s/matches?from=%d&follow=%s",
			rp.nodes[act].url, url.PathEscape(id), next, boolParam(follow))
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			done <- err
			return
		}
		req.Header.Set("Accept", "text/event-stream")
		resp, err := r.client.Do(req)
		if err == nil && resp.StatusCode != http.StatusOK {
			raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode == http.StatusNotFound {
				done <- fmt.Errorf("cluster: partition %d: query %q not registered: %s", rp.ID, id, raw)
				return
			}
			err = fmt.Errorf("cluster: partition %d matches: %s: %s", rp.ID, resp.Status, raw)
		}
		if err != nil {
			if len(rp.nodes) == 2 {
				rp.active.CompareAndSwap(act, 1-act)
			}
			attempts++
			if r.retry.MaxAttempts > 0 && attempts >= r.retry.MaxAttempts {
				done <- err
				return
			}
			if r.retries != nil {
				r.retries.Inc()
			}
			select {
			case <-time.After(b.Next()):
			case <-ctx.Done():
				done <- ctx.Err()
				return
			}
			continue
		}
		attempts = 0
		b.Reset()
		clean, n, serr := consumeSSE(ctx, resp.Body, next, out)
		resp.Body.Close()
		next = n
		if clean {
			done <- nil
			return
		}
		if ctx.Err() != nil {
			done <- ctx.Err()
			return
		}
		_ = serr // dropped connection: reconnect at the next offset
	}
}

// consumeSSE parses a match SSE stream: data events are forwarded to
// out with their log offsets, an explicit "end" event reports a clean
// termination. Returns whether the stream ended cleanly and the next
// offset to resume at.
func consumeSSE(ctx context.Context, body io.Reader, next int64, out chan<- matchLine) (clean bool, resume int64, err error) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 64*1024), 4<<20)
	evType := ""
	pendingID := next
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			evType = ""
		case strings.HasPrefix(line, "event: "):
			evType = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			if v, perr := strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64); perr == nil {
				pendingID = v
			}
		case strings.HasPrefix(line, "data: "):
			if evType == "end" {
				return true, next, nil
			}
			payload := []byte(strings.TrimPrefix(line, "data: "))
			select {
			case out <- matchLine{off: pendingID, data: payload}:
			case <-ctx.Done():
				return false, next, ctx.Err()
			}
			next = pendingID + 1
		}
	}
	return false, next, sc.Err()
}

func boolParam(b bool) string {
	if b {
		return "1"
	}
	return "0"
}

// partitionQuiet reports whether the partition provably cannot emit
// another match sorting at or before the release horizon (a window
// start; a competitor would need its last bound event at or below
// horizon, since first >= last - window). That holds once
//
//   - the node's stream clock is strictly past the horizon
//     (processed_through > horizon): the runner emits a match when the
//     first stepped event closes its window, so every match with
//     first + WITHIN < clock is already out, and no surviving instance
//     or admissible late arrival can close a window below the clock —
//     a future match has first + WITHIN >= clock > horizon and sorts
//     after the head; and
//   - the merge has taken every match the pipeline ever emitted
//     (emitted == consumed): nothing competing is in flight between
//     the node's runner and the merge buffer.
//
// processed_through is read by the node before emitted, so a match
// emitted between the two reads is counted — the check errs toward
// "not quiet". WAL catch-up replays are excluded wholesale: their
// emitted counter restarts with the pipeline, so it is only comparable
// to consumed once catch-up hands off to live delivery.
func (r *Router) partitionQuiet(ctx context.Context, rp *routePartition, id string, horizon, consumed int64) bool {
	resp, err := r.doPartition(ctx, rp, http.MethodGet, "/queries/"+url.PathEscape(id), nil)
	if err != nil {
		return false
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	var d queryDoc
	if err := json.Unmarshal(raw, &d); err != nil {
		return false
	}
	return d.ProcessedThrough != nil && *d.ProcessedThrough > horizon &&
		!d.CatchingUp && d.Emitted == consumed
}

// StreamMatches serves the merged match stream of a fanned-out query:
// one reader per partition, merged by (window start, minimum bound
// sequence). emit receives each released line with its merged offset;
// from skips the first offsets (the merge is deterministic, so a
// reconnecting client sees the same prefix and can resume by offset).
// In follow mode the merge holds a head back until every other
// partition either buffered a later match, ended its stream, or went
// provably quiet past the match's release horizon (window start + the
// query's WITHIN duration).
func (r *Router) StreamMatches(ctx context.Context, id string, from int64, follow bool, emit func(off int64, line []byte) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// The release horizon needs the query's WITHIN duration.
	resp, err := r.doPartition(ctx, r.parts[0], http.MethodGet, "/queries/"+url.PathEscape(id), nil)
	if err != nil {
		return err
	}
	raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &routedError{status: resp.StatusCode, msg: string(raw)}
	}
	var qd queryDoc
	if err := json.Unmarshal(raw, &qd); err != nil {
		return err
	}
	window := qd.Window

	feeds := make([]*partFeed, len(r.parts))
	for i, rp := range r.parts {
		f := &partFeed{rp: rp, lines: make(chan matchLine, 64), err: make(chan error, 1)}
		feeds[i] = f
		go r.streamPartitionMatches(ctx, rp, id, follow, f.lines, f.err)
	}

	var off int64
	quietProbe := time.NewTicker(100 * time.Millisecond)
	defer quietProbe.Stop()
	for {
		// Drain whatever the readers have buffered without blocking.
		for _, f := range feeds {
			for !f.ended {
				select {
				case ml := <-f.lines:
					if err := f.take(ml); err != nil {
						return err
					}
					continue
				case err := <-f.err:
					// Drain lines the reader buffered before its end.
					for {
						select {
						case ml := <-f.lines:
							if err := f.take(ml); err != nil {
								return err
							}
							continue
						default:
						}
						break
					}
					f.ended, f.readErr = true, err
					if err != nil && ctx.Err() == nil {
						return err
					}
				default:
				}
				break
			}
		}

		// Release every head that is provably next in the total order.
		released := false
		for {
			min := -1
			for i, f := range feeds {
				if len(f.head) == 0 {
					continue
				}
				if min < 0 || f.keys[0].less(feeds[min].keys[0]) {
					min = i
				}
			}
			if min < 0 {
				break
			}
			k := feeds[min].keys[0]
			ok := true
			for i, f := range feeds {
				if i == min || f.ended || len(f.head) > 0 {
					continue
				}
				if !follow {
					ok = false // drain mode: wait for the stream end
					break
				}
				if !r.partitionQuiet(ctx, f.rp, id, k.first+window, f.consumed) {
					ok = false
					break
				}
			}
			if !ok {
				break
			}
			line := feeds[min].head[0]
			feeds[min].head = feeds[min].head[1:]
			feeds[min].keys = feeds[min].keys[1:]
			if off >= from {
				if err := emit(off, line); err != nil {
					return err
				}
				if r.mergedOut != nil {
					r.mergedOut.Inc()
				}
			}
			off++
			released = true
		}

		allEnded := true
		for _, f := range feeds {
			if !f.ended || len(f.head) > 0 {
				allEnded = false
				break
			}
		}
		if allEnded {
			return nil
		}
		if released {
			continue
		}

		// Nothing releasable: wait for input on any feed, a quiet-probe
		// tick (a stalled partition may have advanced), or cancellation.
		if err := r.waitForInput(ctx, feeds, quietProbe.C); err != nil {
			return err
		}
	}
}

// waitForInput blocks until any live feed has input, a probe tick
// fires, or ctx is cancelled. Feed channels are drained by the caller.
func (r *Router) waitForInput(ctx context.Context, feeds []*partFeed, tick <-chan time.Time) error {
	// A small poll loop instead of reflect.Select: feed count is tiny
	// and the 10ms granularity is far below the health-probe cadence
	// that gates releases anyway.
	timer := time.NewTimer(10 * time.Millisecond)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-tick:
		return nil
	case <-timer.C:
		return nil
	}
}

package resilience

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/event"
)

func TestCheckpointEnvelopeRoundTrip(t *testing.T) {
	schema := testSchema()
	want := ckptState{
		srcLast: 41,
		arrival: 17,
		reorder: engine.ReordererState{
			Buffered: []event.Event{
				{Seq: 3, Time: 30, Attrs: []event.Value{event.Int(1), event.String("A"), event.Float(0.5)}},
				{Seq: 5, Time: 31, Attrs: []event.Value{event.Int(2), event.String("B"), event.Float(-1)}},
			},
			MaxSeen: 31,
			Seen:    true,
		},
		runner: []byte("opaque runner snapshot"),
	}
	data := encodeCheckpoint(schema, want)
	got, v2, err := decodeCheckpoint(schema, data)
	if err != nil || !v2 {
		t.Fatalf("decode: v2=%v err=%v", v2, err)
	}
	if got.srcLast != want.srcLast || got.arrival != want.arrival ||
		got.reorder.MaxSeen != want.reorder.MaxSeen || got.reorder.Seen != want.reorder.Seen {
		t.Fatalf("header mismatch: got %+v", got)
	}
	if string(got.runner) != string(want.runner) {
		t.Fatalf("runner payload mismatch")
	}
	if len(got.reorder.Buffered) != 2 {
		t.Fatalf("buffered = %d, want 2", len(got.reorder.Buffered))
	}
	for i, e := range got.reorder.Buffered {
		w := want.reorder.Buffered[i]
		if e.Seq != w.Seq || e.Time != w.Time || !reflect.DeepEqual(e.Attrs, w.Attrs) {
			t.Fatalf("buffered[%d] = %+v, want %+v", i, e, w)
		}
	}
}

func TestCheckpointEnvelopeLegacyAndCorrupt(t *testing.T) {
	schema := testSchema()
	if _, v2, err := decodeCheckpoint(schema, []byte("a legacy raw runner snapshot")); v2 || err != nil {
		t.Fatalf("legacy payload: v2=%v err=%v, want false/nil", v2, err)
	}
	valid := encodeCheckpoint(schema, ckptState{srcLast: 7, runner: []byte("r")})
	for cut := len(ckptMagic) + 1; cut < len(valid); cut++ {
		if _, v2, err := decodeCheckpoint(schema, valid[:cut]); err == nil && v2 {
			t.Fatalf("truncation at %d decoded cleanly", cut)
		}
	}
}

func TestCheckpointOffset(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "q.ckpt")

	// Missing file: no watermark, no error.
	if _, ok, err := CheckpointOffset(path); ok || err != nil {
		t.Fatalf("missing file: ok=%v err=%v", ok, err)
	}

	// Legacy file: no watermark.
	if err := os.WriteFile(path, []byte("legacy snapshot bytes"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := CheckpointOffset(path); ok || err != nil {
		t.Fatalf("legacy file: ok=%v err=%v", ok, err)
	}

	// v2 with a watermark.
	env := encodeCheckpoint(testSchema(), ckptState{srcLast: 123, runner: []byte("r")})
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	off, ok, err := CheckpointOffset(path)
	if err != nil || !ok || off != 123 {
		t.Fatalf("v2 file: off=%d ok=%v err=%v, want 123/true/nil", off, ok, err)
	}

	// v2 that never received an event: watermark unknown.
	env = encodeCheckpoint(testSchema(), ckptState{srcLast: -1, runner: []byte("r")})
	if err := os.WriteFile(path, env, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := CheckpointOffset(path); ok || err != nil {
		t.Fatalf("no-watermark file: ok=%v err=%v", ok, err)
	}
}

// TestResumeFromV2WithBufferedEvents: a drain checkpoint taken while
// the reorderer still buffers events (slack > 0 never released them)
// must restore those events, so the resumed run completes the match
// without the feeder re-sending anything below the watermark.
func TestResumeFromV2WithBufferedEvents(t *testing.T) {
	a := testAutomaton(t, 100)
	ckpt := filepath.Join(t.TempDir(), "buffered.ckpt")

	// Pushing B@9 advances the watermark past A@0, releasing (and
	// checkpointing, with CheckpointEvery=1) while B itself is still
	// held back by the slack — so the persisted state has A consumed,
	// B in the reorderer buffer, and watermark srcLast=1.
	in := make(chan event.Event)
	ctx, cancel := context.WithCancel(context.Background())
	out, s := Supervise(ctx, a, nil, in, Config{
		Slack:           5,
		CheckpointEvery: 1,
		CheckpointPath:  ckpt,
	})
	rel := event.NewRelation(testSchema())
	rel.MustAppend(0, event.Int(1), event.String("A"), event.Float(0))
	rel.MustAppend(9, event.Int(2), event.String("B"), event.Float(0))
	for i := 0; i < rel.Len(); i++ {
		e := *rel.Event(i)
		e.Seq = i // source offsets 0..1
		in <- e
	}
	waitFor(t, func() bool {
		off, ok, _ := CheckpointOffset(ckpt)
		return ok && off == 1
	})
	cancel()
	for range out {
	}
	if s.Restarts() != 0 {
		t.Fatalf("unexpected restarts: %d", s.Restarts())
	}

	// Resume with NO further input: Drain must release the restored
	// B@9 and complete the A→B match entirely from checkpoint state.
	empty := make(chan event.Event)
	close(empty)
	out2, s2 := Supervise(context.Background(), a, nil, empty, Config{
		Slack:          5,
		CheckpointPath: ckpt,
		Resume:         true,
	})
	got := collect(out2)
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("resumed run emitted %d matches, want the 1 completed A→B match: %v", len(got), got)
	}
}

// waitFor polls cond until it holds or the test times out via the
// test framework's deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	for i := 0; i < 5000; i++ {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never held")
}

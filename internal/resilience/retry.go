package resilience

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// RetryPolicy parameterizes Retry and Backoff: capped exponential
// backoff with optional jitter. The zero value retries forever with
// 10ms..2s delays, doubling each attempt, and no jitter.
type RetryPolicy struct {
	// Initial is the delay before the second attempt (default 10ms).
	Initial time.Duration
	// Max caps the delay between attempts (default 2s).
	Max time.Duration
	// Multiplier scales the delay after each attempt (default 2).
	Multiplier float64
	// Jitter, in [0,1], spreads each delay uniformly over
	// [delay*(1-Jitter), delay*(1+Jitter)] so a fleet of retriers does
	// not synchronize. 0 keeps delays deterministic.
	Jitter float64
	// MaxAttempts bounds the number of calls to the operation;
	// 0 means unlimited (retry until success, a permanent error, or
	// context cancellation).
	MaxAttempts int
}

// withDefaults fills the zero fields of a policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Initial <= 0 {
		p.Initial = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Backoff is the stateful delay sequence of one retry loop. Create it
// with NewBackoff; each Next returns the delay to sleep before the
// next attempt.
type Backoff struct {
	p    RetryPolicy
	cur  time.Duration
	rand func() float64 // uniform [0,1); replaceable in tests
}

// NewBackoff starts a delay sequence under the policy.
func NewBackoff(p RetryPolicy) *Backoff {
	p = p.withDefaults()
	return &Backoff{p: p, cur: p.Initial, rand: rand.Float64}
}

// Next returns the next delay: the current backoff with jitter
// applied, advancing the (unjittered) backoff toward the cap.
func (b *Backoff) Next() time.Duration {
	d := b.cur
	if next := time.Duration(float64(b.cur) * b.p.Multiplier); next > b.p.Max {
		b.cur = b.p.Max
	} else {
		b.cur = next
	}
	if b.p.Jitter > 0 {
		spread := 1 + b.p.Jitter*(2*b.rand()-1)
		d = time.Duration(float64(d) * spread)
		if d < 0 {
			d = 0
		}
	}
	return d
}

// Reset rewinds the sequence to the initial delay, for loops that
// alternate between healthy and failing phases.
func (b *Backoff) Reset() { b.cur = b.p.Initial }

// permanentError marks an error as non-retryable.
type permanentError struct{ err error }

func (p permanentError) Error() string { return p.err.Error() }
func (p permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Retry stops immediately and returns the
// wrapped error instead of retrying. A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return permanentError{err: err}
}

// IsPermanent reports whether err carries the Permanent marker.
func IsPermanent(err error) bool {
	var p permanentError
	return errors.As(err, &p)
}

// Retry runs op until it succeeds, sleeping between attempts under the
// policy's capped exponential backoff with jitter. It stops early —
// returning the operation's last error — when op returns an error
// wrapped with Permanent, when MaxAttempts is exhausted, or when ctx
// is cancelled (the context error is attached via errors.Join so both
// causes survive inspection).
func Retry(ctx context.Context, p RetryPolicy, op func() error) error {
	p = p.withDefaults()
	b := NewBackoff(p)
	var lastErr error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return errors.Join(err, lastErr)
		}
		err := op()
		if err == nil {
			return nil
		}
		var perm permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		lastErr = err
		if p.MaxAttempts > 0 && attempt >= p.MaxAttempts {
			return lastErr
		}
		t := time.NewTimer(b.Next())
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return errors.Join(ctx.Err(), lastErr)
		}
	}
}

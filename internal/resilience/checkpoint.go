package resilience

import (
	"encoding/binary"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/wal"
)

// ckptMagic introduces the versioned on-disk checkpoint envelope. A
// file without it is a legacy checkpoint: a bare runner snapshot with
// no source-offset watermark and no reorderer state, as written before
// the WAL existed. Those still restore (the watermark just reports
// unknown).
const ckptMagic = "SESCKPT2"

// ckptState is the decoded on-disk checkpoint: everything a restarted
// process needs to resume the supervised pipeline exactly where the
// persisted one stopped, given a replayable source.
type ckptState struct {
	// srcLast is the source offset (event.Seq as delivered by the
	// feeder, e.g. a WAL offset) of the last event received from the
	// input channel, or -1 if none / unknown. Every event at or below
	// it is accounted for: consumed into the runner snapshot, buffered
	// in the reorderer state, or deterministically dead-lettered.
	srcLast int64
	// arrival continues the reorderer tie-break counter.
	arrival int64
	// reorder restores the in-flight buffered events.
	reorder engine.ReordererState
	// runner is the embedded engine snapshot (engine.SnapshotBytes).
	runner []byte
}

// encodeCheckpoint renders the v2 envelope. Buffered events are
// encoded with the WAL event codec over the automaton's schema.
func encodeCheckpoint(schema *event.Schema, st ckptState) []byte {
	buf := make([]byte, 0, len(ckptMagic)+len(st.runner)+len(st.reorder.Buffered)*32+64)
	buf = append(buf, ckptMagic...)
	buf = binary.AppendVarint(buf, st.srcLast)
	buf = binary.AppendVarint(buf, st.arrival)
	if st.reorder.Seen {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.AppendVarint(buf, int64(st.reorder.MaxSeen))
	buf = binary.AppendUvarint(buf, uint64(len(st.reorder.Buffered)))
	var scratch []byte
	for i := range st.reorder.Buffered {
		e := &st.reorder.Buffered[i]
		buf = binary.AppendVarint(buf, int64(e.Seq))
		scratch = wal.EncodeEvent(scratch[:0], schema, e)
		buf = binary.AppendUvarint(buf, uint64(len(scratch)))
		buf = append(buf, scratch...)
	}
	buf = binary.AppendUvarint(buf, uint64(len(st.runner)))
	return append(buf, st.runner...)
}

// decodeCheckpoint parses a v2 envelope. ok is false when data lacks
// the magic (a legacy bare-snapshot checkpoint); err is non-nil only
// for a corrupt v2 payload.
func decodeCheckpoint(schema *event.Schema, data []byte) (st ckptState, ok bool, err error) {
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return ckptState{}, false, nil
	}
	data = data[len(ckptMagic):]
	bad := func(what string) (ckptState, bool, error) {
		return ckptState{}, false, fmt.Errorf("resilience: corrupt checkpoint: %s", what)
	}
	var n int
	if st.srcLast, n = binary.Varint(data); n <= 0 {
		return bad("source offset")
	}
	data = data[n:]
	if st.arrival, n = binary.Varint(data); n <= 0 {
		return bad("arrival counter")
	}
	data = data[n:]
	if len(data) < 1 {
		return bad("seen flag")
	}
	st.reorder.Seen = data[0] == 1
	data = data[1:]
	maxSeen, n := binary.Varint(data)
	if n <= 0 {
		return bad("watermark")
	}
	st.reorder.MaxSeen = event.Time(maxSeen)
	data = data[n:]
	nbuf, n := binary.Uvarint(data)
	if n <= 0 || nbuf > uint64(len(data)) {
		return bad("buffer length")
	}
	data = data[n:]
	st.reorder.Buffered = make([]event.Event, 0, nbuf)
	for i := uint64(0); i < nbuf; i++ {
		seq, n := binary.Varint(data)
		if n <= 0 {
			return bad("buffered event seq")
		}
		data = data[n:]
		plen, n := binary.Uvarint(data)
		if n <= 0 || plen > uint64(len(data)-n) {
			return bad("buffered event length")
		}
		data = data[n:]
		e, err := wal.DecodeEvent(data[:plen], schema)
		if err != nil {
			return ckptState{}, false, fmt.Errorf("resilience: corrupt checkpoint: %w", err)
		}
		e.Seq = int(seq)
		st.reorder.Buffered = append(st.reorder.Buffered, e)
		data = data[plen:]
	}
	rlen, n := binary.Uvarint(data)
	if n <= 0 || rlen != uint64(len(data)-n) {
		return bad("runner snapshot length")
	}
	st.runner = data[n : n+int(rlen)]
	return st, true, nil
}

// CheckpointOffset reports the source-offset watermark recorded in the
// checkpoint file at path: every source event with offset at or below
// the returned value is covered by the checkpoint, so a replaying
// feeder should resume at watermark+1. ok is false when the file does
// not exist, is a legacy (pre-WAL) checkpoint, or records no watermark
// — the feeder must then replay from the query's registration offset.
func CheckpointOffset(path string) (watermark int64, ok bool, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	// Only the header is needed; schema-dependent parts come later in
	// the layout, so a nil schema never gets dereferenced here.
	if len(data) < len(ckptMagic) || string(data[:len(ckptMagic)]) != ckptMagic {
		return 0, false, nil
	}
	v, n := binary.Varint(data[len(ckptMagic):])
	if n <= 0 {
		return 0, false, fmt.Errorf("resilience: corrupt checkpoint %s: source offset", path)
	}
	if v < 0 {
		return 0, false, nil
	}
	return v, true, nil
}

package resilience

import (
	"context"
	"errors"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"repro/internal/automaton"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/pattern"
)

func testSchema() *event.Schema {
	return event.MustSchema(
		event.Field{Name: "ID", Type: event.TypeInt},
		event.Field{Name: "L", Type: event.TypeString},
		event.Field{Name: "V", Type: event.TypeFloat},
	)
}

// testAutomaton compiles ⟨{x},{y}⟩ with x.L='A', y.L='B'.
func testAutomaton(t *testing.T, within event.Duration) *automaton.Automaton {
	t.Helper()
	p := pattern.New().
		Set(pattern.Var("x")).
		Set(pattern.Var("y")).
		WhereConst("x", "L", pattern.Eq, event.String("A")).
		WhereConst("y", "L", pattern.Eq, event.String("B")).
		Within(within).MustBuild()
	a, err := automaton.Compile(p, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// tortureRelation: n events at consecutive ticks cycling A, B, C — a
// steady mix of starts, completions and noise.
func tortureRelation(t *testing.T, n int) *event.Relation {
	t.Helper()
	r := event.NewRelation(testSchema())
	labels := []string{"A", "B", "C"}
	for i := 0; i < n; i++ {
		r.MustAppend(event.Time(i), event.Int(1), event.String(labels[i%3]), event.Float(0))
	}
	return r
}

func feed(rel *event.Relation) <-chan event.Event {
	ch := make(chan event.Event)
	go func() {
		defer close(ch)
		for i := 0; i < rel.Len(); i++ {
			ch <- *rel.Event(i)
		}
	}()
	return ch
}

func collect(out <-chan engine.Match) []string {
	var got []string
	for m := range out {
		got = append(got, m.String())
	}
	return got
}

// TestTortureChaosWithinSlack is the headline robustness guarantee:
// a supervised, checkpointing run fed through a ChaosSource that
// duplicates events, reorders within the slack, and injects panics
// must emit EXACTLY the match set of a clean single-pass run.
func TestTortureChaosWithinSlack(t *testing.T) {
	a := testAutomaton(t, 10)
	rel := tortureRelation(t, 200)

	want, _, err := engine.Run(a, rel)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("setup: clean run found no matches; torture proves nothing")
	}
	wantStrs := make([]string, len(want))
	for i, m := range want {
		wantStrs[i] = m.String()
	}

	chaos := NewChaosSource(feed(rel), ChaosConfig{
		Seed:          42,
		DupProb:       0.3,
		ReorderWindow: 4,
		PanicAfter:    []int64{50, 120},
	})
	ckpt := filepath.Join(t.TempDir(), "torture.ckpt")
	out, s := Supervise(context.Background(), a, nil, chaos.Events(), Config{
		Slack:           16,
		DedupWindow:     32,
		CheckpointEvery: 16,
		CheckpointPath:  ckpt,
		MaxRestarts:     10,
		FaultHook:       chaos.FaultHook,
	})
	got := collect(out)

	if err := s.Err(); err != nil {
		t.Fatalf("supervised run failed: %v", err)
	}
	if s.Restarts() < 1 {
		t.Errorf("Restarts = %d, want >= 1: no panic ever struck", s.Restarts())
	}
	if stats := chaos.Stats(); stats.Panics < 1 || stats.Duplicated < 1 {
		t.Errorf("chaos injected too little: %+v", stats)
	}
	if s.DuplicatesDropped() < 1 {
		t.Errorf("DuplicatesDropped = 0, want the injected duplicates removed")
	}
	if s.Checkpoints() < 1 {
		t.Errorf("Checkpoints = 0, want periodic checkpointing")
	}
	sort.Strings(wantStrs)
	gotSorted := append([]string{}, got...)
	sort.Strings(gotSorted)
	if strings.Join(gotSorted, "\n") != strings.Join(wantStrs, "\n") {
		t.Errorf("tortured run diverges from clean run:\nclean (%d): %v\ntortured (%d): %v",
			len(wantStrs), wantStrs, len(got), got)
	}
	// Faults within slack must be fully masked: nothing dead-lettered.
	if s.DeadLetters() != 0 {
		t.Errorf("DeadLetters = %d, want 0: in-slack chaos must be absorbed", s.DeadLetters())
	}
}

// TestTortureDegradedReportsShedding: a supervised run under an
// instance cap with the DropOldest policy finishes without error and
// accounts for exactly what it shed.
func TestTortureDegradedReportsShedding(t *testing.T) {
	a := testAutomaton(t, 100000)
	rel := event.NewRelation(testSchema())
	for i := 0; i < 50; i++ {
		rel.MustAppend(event.Time(i), event.Int(1), event.String("A"), event.Float(0))
	}
	rel.MustAppend(100, event.Int(1), event.String("B"), event.Float(0))

	opts := []engine.Option{engine.WithMaxInstances(10), engine.WithOverloadPolicy(engine.DropOldest)}
	out, s := Supervise(context.Background(), a, opts, feed(rel), Config{})
	got := collect(out)

	if err := s.Err(); err != nil {
		t.Fatalf("degraded run must not fail: %v", err)
	}
	m := s.Metrics()
	if m.InstancesShed != 40 {
		t.Errorf("InstancesShed = %d, want 40 (50 starts, cap 10)", m.InstancesShed)
	}
	if m.DegradedSteps == 0 {
		t.Errorf("DegradedSteps = 0, want degradation recorded")
	}
	if len(got) != 10 {
		t.Errorf("got %d matches, want the 10 surviving instances", len(got))
	}
	// Contrast: the paper-exact Fail policy gives up instead, and the
	// supervisor must surface that as a terminal error (deterministic
	// errors are not retried).
	out2, s2 := Supervise(context.Background(), a,
		[]engine.Option{engine.WithMaxInstances(10)}, feed(rel), Config{})
	collect(out2)
	if err := s2.Err(); err == nil || !strings.Contains(err.Error(), "exceed the cap") {
		t.Errorf("Fail policy under the supervisor: err = %v, want the cap error", err)
	}
	if s2.Restarts() != 0 {
		t.Errorf("deterministic engine errors must not be retried, got %d restarts", s2.Restarts())
	}
}

// TestSupervisorDeadLetters: beyond-slack and schema-invalid events go
// to the dead-letter callback with the documented reasons instead of
// poisoning the run.
func TestSupervisorDeadLetters(t *testing.T) {
	a := testAutomaton(t, 100)
	in := make(chan event.Event, 4)
	in <- event.Event{Time: 100, Attrs: []event.Value{event.Int(1), event.String("A"), event.Float(0)}}
	in <- event.Event{Time: 0, Attrs: []event.Value{event.Int(1), event.String("B"), event.Float(0)}}   // 100 ticks late, slack 5
	in <- event.Event{Time: 101, Attrs: []event.Value{event.Int(1)}}                                    // schema-invalid
	in <- event.Event{Time: 102, Attrs: []event.Value{event.Int(1), event.String("B"), event.Float(0)}} // fine
	close(in)

	var reasons []error
	out, s := Supervise(context.Background(), a, nil, in, Config{
		Slack:      5,
		DeadLetter: func(e event.Event, reason error) { reasons = append(reasons, reason) },
	})
	collect(out)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if s.DeadLetters() != 2 {
		t.Fatalf("DeadLetters = %d, want 2", s.DeadLetters())
	}
	if len(reasons) != 2 || !errors.Is(reasons[0], ErrLate) || !errors.Is(reasons[1], ErrSchema) {
		t.Errorf("dead-letter reasons = %v, want [ErrLate ErrSchema]", reasons)
	}
	if m := s.Metrics(); m.EventsProcessed != 2 {
		t.Errorf("EventsProcessed = %d, want the 2 valid events", m.EventsProcessed)
	}
}

// TestSupervisorGivesUp: a fault that keeps recurring exhausts
// MaxRestarts and surfaces a terminal error instead of looping forever.
func TestSupervisorGivesUp(t *testing.T) {
	a := testAutomaton(t, 100)
	rel := tortureRelation(t, 20)
	chaos := NewChaosSource(feed(rel), ChaosConfig{
		// Consecutive delivery indices: every replay attempt trips the
		// next one immediately.
		PanicAfter: []int64{3, 4, 5, 6, 7, 8},
	})
	restarts := 0
	out, s := Supervise(context.Background(), a, nil, chaos.Events(), Config{
		MaxRestarts: 2,
		Backoff:     1, // keep the test fast
		FaultHook:   chaos.FaultHook,
		OnRestart:   func(attempt int, cause error) { restarts++ },
	})
	collect(out)
	err := s.Err()
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 restarts") {
		t.Fatalf("err = %v, want giving-up error", err)
	}
	if restarts != 2 {
		t.Errorf("OnRestart fired %d times, want 2", restarts)
	}
	var pe panicError
	if !errors.As(err, &pe) {
		t.Errorf("terminal error should wrap the causing panic, got %T", errors.Unwrap(err))
	}
}

// TestSupervisorResume: a new supervisor with Resume picks up the
// state persisted at CheckpointPath by an earlier run.
func TestSupervisorResume(t *testing.T) {
	a := testAutomaton(t, 10)
	rel := tortureRelation(t, 64)
	ckpt := filepath.Join(t.TempDir(), "resume.ckpt")

	out1, s1 := Supervise(context.Background(), a, nil, feed(rel), Config{
		CheckpointEvery: 8,
		CheckpointPath:  ckpt,
	})
	collect(out1)
	if err := s1.Err(); err != nil {
		t.Fatal(err)
	}
	if s1.Checkpoints() != 8 {
		t.Fatalf("Checkpoints = %d, want 8 (64 events / 8)", s1.Checkpoints())
	}

	// The persisted snapshot is the state after the last checkpoint;
	// a resumed supervisor starts from there.
	empty := make(chan event.Event)
	close(empty)
	out2, s2 := Supervise(context.Background(), a, nil, empty, Config{
		CheckpointPath: ckpt,
		Resume:         true,
	})
	collect(out2)
	if err := s2.Err(); err != nil {
		t.Fatal(err)
	}
	if got := s2.Metrics().EventsProcessed; got != 64 {
		t.Errorf("resumed EventsProcessed = %d, want 64 from the checkpoint", got)
	}

	// A corrupt checkpoint is a loud failure, not silent state loss.
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := writeFileAtomic(bad, []byte("not a snapshot")); err != nil {
		t.Fatal(err)
	}
	out3, s3 := Supervise(context.Background(), a, nil, empty, Config{CheckpointPath: bad, Resume: true})
	collect(out3)
	if err := s3.Err(); err == nil {
		t.Errorf("corrupt checkpoint must fail the resume")
	}
}

// TestSupervisorCancellation: context cancellation closes the match
// channel and surfaces ctx.Err.
func TestSupervisorCancellation(t *testing.T) {
	a := testAutomaton(t, 100)
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan event.Event) // never closed: only cancellation can end the run
	out, s := Supervise(ctx, a, nil, in, Config{})
	cancel()
	collect(out) // must return: the channel closes on cancellation
	if err := s.Err(); err != context.Canceled {
		t.Errorf("Err = %v, want context.Canceled", err)
	}
}

// TestChaosSourceDeterminism: same seed, same input, same faults — the
// harness itself must be reproducible or torture failures aren't
// debuggable.
func TestChaosSourceDeterminism(t *testing.T) {
	cfg := ChaosConfig{Seed: 7, DropProb: 0.2, DupProb: 0.2, ReorderWindow: 3, JitterProb: 0.5, MaxJitter: 2}
	render := func() []string {
		rel := tortureRelation(t, 100)
		c := NewChaosSource(feed(rel), cfg)
		var got []string
		for e := range c.Events() {
			got = append(got, e.String())
		}
		return got
	}
	a, b := render(), render()
	if strings.Join(a, "\n") != strings.Join(b, "\n") {
		t.Errorf("same seed produced different streams")
	}
}

// TestChaosSourceReorderBound: chunked shuffling displaces an event by
// at most ReorderWindow-1 positions — the bound the slack guarantee in
// TestTortureChaosWithinSlack rests on.
func TestChaosSourceReorderBound(t *testing.T) {
	const window = 5
	rel := tortureRelation(t, 500)
	c := NewChaosSource(feed(rel), ChaosConfig{Seed: 3, ReorderWindow: window})
	pos := 0
	for e := range c.Events() {
		if d := int(e.Time) - pos; d > window-1 || d < -(window-1) {
			t.Fatalf("event with time %d delivered at position %d: displacement %d exceeds window", e.Time, pos, d)
		}
		pos++
	}
	if pos != 500 {
		t.Fatalf("forwarded %d events, want all 500", pos)
	}
}

// TestSupervisorRegistry: with Config.Registry set, the supervisor
// mirrors its counters into the registry (restarts, dead letters,
// checkpoints, duplicates, events) and exposes a checkpoint-age gauge.
func TestSupervisorRegistry(t *testing.T) {
	a := testAutomaton(t, 100)
	rel := tortureRelation(t, 40)
	chaos := NewChaosSource(feed(rel), ChaosConfig{
		Seed:       7,
		PanicAfter: []int64{10},
		DupProb:    0.3,
	})
	reg := obs.NewRegistry()
	out, s := Supervise(context.Background(), a, nil, chaos.Events(), Config{
		Slack:           5,
		DedupWindow:     5,
		CheckpointEvery: 8,
		Backoff:         1,
		FaultHook:       chaos.FaultHook,
		Registry:        reg,
	})
	collect(out)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	counters := map[string]int64{
		"ses_resilience_restarts_total":           s.Restarts(),
		"ses_resilience_dead_letters_total":       s.DeadLetters(),
		"ses_resilience_checkpoints_total":        s.Checkpoints(),
		"ses_resilience_duplicates_dropped_total": s.DuplicatesDropped(),
		"ses_resilience_events_total":             s.Metrics().EventsProcessed,
	}
	for name, want := range counters {
		if got, ok := reg.Value(name); !ok || got != want {
			t.Errorf("%s = %d (present=%v), want %d", name, got, ok, want)
		}
	}
	if s.Restarts() == 0 || s.Checkpoints() == 0 || s.DuplicatesDropped() == 0 {
		t.Errorf("test exercised too little: restarts=%d checkpoints=%d dups=%d",
			s.Restarts(), s.Checkpoints(), s.DuplicatesDropped())
	}
	if age, ok := reg.Value("ses_resilience_checkpoint_age_seconds"); !ok || age < 0 {
		t.Errorf("checkpoint age = %d (present=%v), want >= 0 after a checkpoint", age, ok)
	}
}

// TestSupervisorSentinelDeadLetter: events carrying reserved sentinel
// timestamps are dead-lettered with ErrSentinelTime instead of
// reaching the reorderer.
func TestSupervisorSentinelDeadLetter(t *testing.T) {
	a := testAutomaton(t, 100)
	in := make(chan event.Event, 3)
	in <- event.Event{Time: 1, Attrs: []event.Value{event.Int(1), event.String("A"), event.Float(0)}}
	in <- event.Event{Time: event.MaxTime, Attrs: []event.Value{event.Int(1), event.String("B"), event.Float(0)}}
	in <- event.Event{Time: 2, Attrs: []event.Value{event.Int(1), event.String("B"), event.Float(0)}}
	close(in)
	var reasons []error
	out, s := Supervise(context.Background(), a, nil, in, Config{
		DeadLetter: func(e event.Event, reason error) { reasons = append(reasons, reason) },
	})
	got := collect(out)
	if err := s.Err(); err != nil {
		t.Fatal(err)
	}
	if len(reasons) != 1 || !errors.Is(reasons[0], ErrSentinelTime) {
		t.Fatalf("dead-letter reasons = %v, want [ErrSentinelTime]", reasons)
	}
	if len(got) != 1 {
		t.Errorf("matches = %v, want the one A-B pair from the valid events", got)
	}
}

package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/automaton"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/obs"
)

// Dead-letter reasons passed to Config.DeadLetter.
var (
	// ErrLate marks an event that arrived later than the reorder slack
	// allows; consuming it would violate the runner's order contract.
	ErrLate = errors.New("resilience: event beyond reorder slack")
	// ErrSchema marks an event whose attributes do not conform to the
	// automaton's schema.
	ErrSchema = errors.New("resilience: event fails schema validation")
	// ErrSentinelTime marks an event carrying one of the reserved
	// timestamps event.MinTime / event.MaxTime, which the runtime uses
	// internally as watermark sentinels and therefore cannot process.
	ErrSentinelTime = errors.New("resilience: event timestamp is a reserved sentinel")
)

// Config parameterizes Supervise. The zero value gives a working
// supervisor: no reorder slack, checkpoint every 256 events, at most 3
// restarts with 10ms..2s exponential backoff, and silent dead-letter.
type Config struct {
	// Slack is the reorder slack: events may arrive up to Slack time
	// units later than any already-seen event. Later ones go to the
	// dead-letter callback with ErrLate.
	Slack event.Duration
	// DedupWindow, when positive, drops redelivered events with
	// identical (time, payload) within the window (see
	// engine.Reorderer).
	DedupWindow event.Duration
	// CheckpointEvery is the number of consumed events between
	// checkpoints; 0 means the default of 256. Smaller values bound the
	// replay work after a crash at the cost of more frequent snapshots.
	CheckpointEvery int
	// CheckpointPath, when non-empty, additionally persists every
	// checkpoint to this file (written atomically via rename), so a
	// restarted process can resume with Resume.
	CheckpointPath string
	// Resume makes the supervisor restore initial state from
	// CheckpointPath if the file exists. The caller is responsible for
	// feeding only events not yet consumed by the checkpointed run.
	Resume bool
	// MaxRestarts caps recoveries over the stream's lifetime; 0 means
	// the default of 3, negative disables recovery entirely.
	MaxRestarts int
	// Backoff is the initial restart delay, doubling per consecutive
	// restart up to MaxBackoff (defaults 10ms and 2s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// DeadLetter, when non-nil, receives events the pipeline refuses to
	// process (too late, schema-invalid) together with the reason,
	// instead of dropping them silently.
	DeadLetter func(event.Event, error)
	// FaultHook, when non-nil, is invoked with every event immediately
	// before it is stepped, inside the supervised region. Panics it
	// raises are recovered and trigger restart — the injection point
	// used by ChaosSource.FaultHook.
	FaultHook func(*event.Event)
	// OnRestart, when non-nil, is notified of every recovery with the
	// restart ordinal and the causing fault.
	OnRestart func(attempt int, cause error)
	// Registry, when non-nil, receives live supervision metrics:
	// restart, dead-letter, checkpoint, duplicate and event counters
	// plus a checkpoint-age gauge (see newSupObs for the series names).
	// Several supervisors may share one registry; without MetricLabels
	// the counters are then cumulative across them.
	Registry *obs.Registry
	// MetricLabels, when non-empty, are label key/value pairs appended
	// to every series this supervisor registers (via obs.SeriesName),
	// so supervisors sharing one registry — e.g. the per-query runners
	// of the serving layer — export distinguishable series instead of
	// cumulative ones.
	MetricLabels []string
	// CheckpointOnDrain takes a final checkpoint to CheckpointPath when
	// the input channel closes, before the end-of-input flush. A
	// process that drains its supervisors on shutdown can then restart
	// with Resume and skip the entire consumed input.
	CheckpointOnDrain bool
}

// Supervisor reports the health of a supervised stream. All methods
// are safe to call at any time; the definitive values are available
// once the match channel has closed.
type Supervisor struct {
	mu          sync.Mutex
	err         error
	restarts    int64
	deadLetters int64
	checkpoints int64
	duplicates  int64
	metrics     engine.Metrics

	// emitted counts matches delivered downstream (replay-suppressed
	// re-emissions excluded); completed is the completed-through stream
	// time (math.MinInt64 until the first event is fully processed).
	emitted   atomic.Int64
	completed atomic.Int64

	o *supObs // nil unless Config.Registry was set
}

// Emitted returns the number of matches the pipeline has delivered
// downstream. Matches suppressed during crash-recovery replay (they
// were already delivered before the crash) are not re-counted.
func (s *Supervisor) Emitted() int64 { return s.emitted.Load() }

// CompletedThrough reports the runner's stream clock: the highest
// event time actually stepped through the automaton (events the
// reorderer still buffers do not count). Two guarantees follow from
// the runner's expiry discipline — an accepted instance is emitted by
// the first stepped event past its window: (1) every match whose
// window closed strictly before the clock (first + WITHIN < clock)
// has already been handed downstream, and (2) no future match can
// close a window below the clock — surviving instances have
// first + WITHIN >= clock, and any later arrival the reorderer admits
// starts at or above it. After end of input it reports math.MaxInt64.
// ok is false before the first event is stepped.
//
// Readers that pair this with Emitted to decide "no further match can
// sort below time T" must read CompletedThrough first: a match emitted
// between the two reads is then included in Emitted, and any match
// emitted after both reads closes its window at or above the observed
// clock.
func (s *Supervisor) CompletedThrough() (int64, bool) {
	v := s.completed.Load()
	return v, v != math.MinInt64
}

// supObs bundles the supervisor's registry-exported metrics. All
// fields are updated at the same sites as the Supervisor's own
// mutex-guarded counters; the checkpoint-age gauge is sampled at
// scrape time from the atomically stored wall-clock instant of the
// last completed checkpoint.
type supObs struct {
	restarts    *obs.Counter
	deadLetters *obs.Counter
	checkpoints *obs.Counter
	duplicates  *obs.Counter
	events      *obs.Counter
	lastCkpt    atomic.Int64 // UnixNano of the last checkpoint, 0 before the first
	prevDup     int64        // last synced Reorderer.DuplicatesDropped (run goroutine only)
}

func newSupObs(r *obs.Registry, labels []string) *supObs {
	name := func(base string) string { return obs.SeriesName(base, labels...) }
	o := &supObs{
		restarts:    r.Counter(name("ses_resilience_restarts_total"), "Recoveries performed after pipeline panics."),
		deadLetters: r.Counter(name("ses_resilience_dead_letters_total"), "Events refused by the pipeline (late, schema-invalid, sentinel-timestamped)."),
		checkpoints: r.Counter(name("ses_resilience_checkpoints_total"), "Runner state checkpoints taken."),
		duplicates:  r.Counter(name("ses_resilience_duplicates_dropped_total"), "Redelivered events removed by the dedup window."),
		events:      r.Counter(name("ses_resilience_events_total"), "Events accepted and stepped through the supervised runner."),
	}
	r.GaugeFunc(name("ses_resilience_checkpoint_age_seconds"),
		"Seconds since the last completed checkpoint (-1 before the first).",
		func() int64 {
			last := o.lastCkpt.Load()
			if last == 0 {
				return -1
			}
			return int64(time.Since(time.Unix(0, last)).Seconds())
		})
	return o
}

// markCheckpoint records a completed checkpoint. Nil-safe.
func (o *supObs) markCheckpoint() {
	if o == nil {
		return
	}
	o.checkpoints.Inc()
	o.lastCkpt.Store(time.Now().UnixNano())
}

// syncDuplicates folds the reorderer's cumulative duplicate count into
// the exported counter. Nil-safe; called only from the run goroutine.
func (o *supObs) syncDuplicates(total int64) {
	if o == nil {
		return
	}
	if d := total - o.prevDup; d > 0 {
		o.duplicates.Add(d)
		o.prevDup = total
	}
}

// Err returns the error that terminated the stream, or nil for a clean
// end-of-input shutdown.
func (s *Supervisor) Err() error { s.mu.Lock(); defer s.mu.Unlock(); return s.err }

// Restarts returns the number of recoveries performed.
func (s *Supervisor) Restarts() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.restarts }

// DeadLetters returns the number of events routed to the dead-letter
// callback.
func (s *Supervisor) DeadLetters() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.deadLetters }

// Checkpoints returns the number of checkpoints taken.
func (s *Supervisor) Checkpoints() int64 { s.mu.Lock(); defer s.mu.Unlock(); return s.checkpoints }

// DuplicatesDropped returns the number of redelivered events removed
// by the dedup window.
func (s *Supervisor) DuplicatesDropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.duplicates
}

// Metrics returns the runner's execution metrics as of the last
// completed step (final after the match channel closes).
func (s *Supervisor) Metrics() engine.Metrics { s.mu.Lock(); defer s.mu.Unlock(); return s.metrics }

func (s *Supervisor) fail(err error) { s.mu.Lock(); s.err = err; s.mu.Unlock() }

// panicError wraps a recovered panic so restart logic can distinguish
// crashes (recoverable by replay) from deterministic engine errors
// (not).
type panicError struct {
	val   interface{}
	stack []byte
}

func (p panicError) Error() string { return fmt.Sprintf("resilience: pipeline panic: %v", p.val) }

// Supervise runs a resilient streaming evaluation of the automaton
// over in and returns the match channel plus a Supervisor handle.
//
// Incoming events are schema-validated (failures dead-letter), passed
// through a Reorderer with cfg.Slack (late arrivals dead-letter,
// in-window redeliveries dedup), and stepped through a Runner built
// with opts. The runner state is checkpointed every CheckpointEvery
// events; a panic anywhere in the step path (including FaultHook) is
// recovered by restoring the last checkpoint, deterministically
// replaying the events consumed since — suppressing matches already
// delivered — and resuming, with capped exponential backoff between
// consecutive recoveries. Deterministic engine errors (e.g. the Fail
// overload policy tripping) terminate the stream instead, since replay
// would reproduce them.
//
// The match channel closes on end of input (after a final flush),
// on ctx cancellation, or on a terminal error; consult
// Supervisor.Err afterwards.
func Supervise(ctx context.Context, a *automaton.Automaton, opts []engine.Option,
	in <-chan event.Event, cfg Config) (<-chan engine.Match, *Supervisor) {
	s := &Supervisor{}
	s.completed.Store(math.MinInt64)
	if cfg.Registry != nil {
		s.o = newSupObs(cfg.Registry, cfg.MetricLabels)
	}
	out := make(chan engine.Match)
	go s.run(ctx, a, opts, in, nil, cfg, out)
	return out, s
}

// SuperviseBlocks is Supervise over a channel of shared event blocks:
// each received block's selected events are processed in order, exactly
// as if they had arrived one by one on a plain event channel. Blocks
// are treated as immutable — the supervisor copies each event before
// stamping scratch fields. This is the batched input the serving
// layer's routed fan-out uses: one channel operation per batch instead
// of one per event.
//
// Unlike Supervise, block mode preserves each event's Seq as stamped
// by the feeder instead of renumbering with local counters: the feeder
// numbers events by their global stream position, so matches carry the
// same sequence numbers whether the query received the full stream or
// a routed sub-stream of it. Seq must be strictly increasing across
// delivered events (stream positions and WAL offsets both are).
func SuperviseBlocks(ctx context.Context, a *automaton.Automaton, opts []engine.Option,
	in <-chan event.Block, cfg Config) (<-chan engine.Match, *Supervisor) {
	s := &Supervisor{}
	s.completed.Store(math.MinInt64)
	if cfg.Registry != nil {
		s.o = newSupObs(cfg.Registry, cfg.MetricLabels)
	}
	out := make(chan engine.Match)
	go s.run(ctx, a, opts, nil, in, cfg, out)
	return out, s
}

func (s *Supervisor) run(ctx context.Context, a *automaton.Automaton, opts []engine.Option,
	inEv <-chan event.Event, inBlk <-chan event.Block, cfg Config, out chan<- engine.Match) {
	defer close(out)

	// Block-mode inputs arrive pre-numbered by global stream position;
	// keep those numbers so matches are byte-identical across full and
	// routed delivery (see SuperviseBlocks).
	preserveSeq := inBlk != nil

	maxRestarts := cfg.MaxRestarts
	if maxRestarts == 0 {
		maxRestarts = 3
	} else if maxRestarts < 0 {
		maxRestarts = 0
	}
	backoff0 := cfg.Backoff
	if backoff0 <= 0 {
		backoff0 = 10 * time.Millisecond
	}
	maxBackoff := cfg.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 2 * time.Second
	}
	ckptEvery := cfg.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 256
	}

	runner := engine.New(a, opts...)
	var resumed *ckptState
	var baseline []byte // the resumed snapshot, the restart baseline until the first checkpoint
	if cfg.Resume && cfg.CheckpointPath != "" {
		if data, err := os.ReadFile(cfg.CheckpointPath); err == nil {
			st, v2, derr := decodeCheckpoint(a.Schema, data)
			if derr != nil {
				s.fail(fmt.Errorf("resilience: resuming from %s: %w", cfg.CheckpointPath, derr))
				return
			}
			// Legacy checkpoints are bare runner snapshots; v2 wraps the
			// snapshot with the source watermark and reorderer state.
			snap := data
			if v2 {
				snap = st.runner
				resumed = &st
			}
			restored, err := engine.RestoreRunnerBytes(a, snap, opts...)
			if err != nil {
				s.fail(fmt.Errorf("resilience: resuming from %s: %w", cfg.CheckpointPath, err))
				return
			}
			runner = restored
			baseline = snap
		} else if !errors.Is(err, os.ErrNotExist) {
			s.fail(err)
			return
		}
	}
	defer func() {
		s.mu.Lock()
		s.metrics = runner.Metrics()
		s.mu.Unlock()
	}()

	deadLetter := func(e event.Event, reason error) {
		s.mu.Lock()
		s.deadLetters++
		s.mu.Unlock()
		if s.o != nil {
			s.o.deadLetters.Inc()
		}
		if cfg.DeadLetter != nil {
			cfg.DeadLetter(e, reason)
		}
	}

	ro := engine.NewReorderer(cfg.Slack)
	ro.DedupWindow = cfg.DedupWindow
	ro.Late = func(e event.Event) { deadLetter(e, ErrLate) }
	defer func() {
		s.mu.Lock()
		s.duplicates = ro.DuplicatesDropped
		s.mu.Unlock()
	}()

	// arrival numbers events for the reorderer's stable tie-break;
	// srcLast tracks the source offset (event.Seq as stamped by the
	// feeder, e.g. a WAL offset) of the last event received, the
	// watermark persisted with every on-disk checkpoint.
	arrival, srcLast := 0, int64(-1)
	if resumed != nil {
		ro.RestoreState(resumed.reorder)
		arrival, srcLast = int(resumed.arrival), resumed.srcLast
	}

	// maxStepped is the highest event time fed through the runner — the
	// stream clock published by CompletedThrough. It advances in
	// feedOne, after the event's matches are delivered, so the clock
	// never gets ahead of the emissions it vouches for. A resumed run
	// starts over: the clock climbs again as live events arrive.
	maxStepped := int64(math.MinInt64)

	// Recovery is possible from the very first event without an eager
	// initial snapshot: nil ckpt means "the runner's initial state",
	// which a restart rebuilds with engine.New — identical to restoring
	// a snapshot taken before any event. A resumed run's baseline is
	// the checkpoint bytes already read from disk; replay holds
	// everything consumed since the baseline.
	ckpt := baseline
	if s.o != nil {
		// The initial snapshot starts the checkpoint-age clock without
		// counting toward Checkpoints(), which reports periodic saves.
		s.o.lastCkpt.Store(time.Now().UnixNano())
	}
	var replay []event.Event
	emittedSince := 0

	send := func(m engine.Match) bool {
		select {
		case out <- m:
			s.emitted.Add(1)
			return true
		case <-ctx.Done():
			s.fail(ctx.Err())
			return false
		}
	}

	step := func(e *event.Event) (ms []engine.Match, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = panicError{val: p, stack: debug.Stack()}
			}
		}()
		if cfg.FaultHook != nil {
			cfg.FaultHook(e)
		}
		return runner.Step(e)
	}

	saveCheckpoint := func() bool {
		data, err := runner.SnapshotBytes()
		if err != nil {
			s.fail(err)
			return false
		}
		if cfg.CheckpointPath != "" {
			env := encodeCheckpoint(a.Schema, ckptState{
				srcLast: srcLast,
				arrival: int64(arrival),
				reorder: ro.Snapshot(),
				runner:  data,
			})
			if err := writeFileAtomic(cfg.CheckpointPath, env); err != nil {
				s.fail(err)
				return false
			}
		}
		ckpt = data
		replay = replay[:0]
		emittedSince = 0
		s.mu.Lock()
		s.checkpoints++
		s.mu.Unlock()
		s.o.markCheckpoint()
		return true
	}

	// restore recovers from a crash: restore the last checkpoint and
	// deterministically replay the events consumed since, suppressing
	// the matches that were already delivered downstream. A crash
	// during replay consumes another restart and tries again.
	restore := func(cause error) bool {
		// Deterministic (jitter-free) capped exponential backoff: a
		// single supervisor retrying its own runner gains nothing from
		// desynchronization, and tests rely on the exact delays.
		bo := NewBackoff(RetryPolicy{Initial: backoff0, Max: maxBackoff})
		for {
			s.mu.Lock()
			s.restarts++
			attempt := int(s.restarts)
			s.mu.Unlock()
			if s.o != nil {
				s.o.restarts.Inc()
			}
			if attempt > maxRestarts {
				s.fail(fmt.Errorf("resilience: giving up after %d restarts: %w", attempt-1, cause))
				return false
			}
			if cfg.OnRestart != nil {
				cfg.OnRestart(attempt, cause)
			}
			select {
			case <-time.After(bo.Next()):
			case <-ctx.Done():
				s.fail(ctx.Err())
				return false
			}
			if ckpt == nil {
				// No checkpoint was ever taken: the baseline is the
				// runner's initial state.
				runner = engine.New(a, opts...)
			} else {
				restored, err := engine.RestoreRunnerBytes(a, ckpt, opts...)
				if err != nil {
					s.fail(err)
					return false
				}
				runner = restored
			}
			skip, emitted, crashed := emittedSince, 0, false
			for i := range replay {
				ev := replay[i]
				if !preserveSeq {
					ev.Seq = int(runner.Metrics().EventsProcessed)
				}
				ms, err := step(&ev)
				if err != nil {
					var pe panicError
					if !errors.As(err, &pe) {
						s.fail(err)
						return false
					}
					cause, crashed = err, true
					break
				}
				for _, m := range ms {
					if emitted++; emitted > skip && !send(m) {
						return false
					}
				}
			}
			if crashed {
				continue
			}
			if emitted > skip {
				emittedSince = emitted
			}
			return true
		}
	}

	feedOne := func(e event.Event) bool {
		for {
			ev := e
			if !preserveSeq {
				ev.Seq = int(runner.Metrics().EventsProcessed)
			}
			ms, err := step(&ev)
			if err != nil {
				var pe panicError
				if errors.As(err, &pe) {
					if !restore(err) {
						return false
					}
					continue // retry e on the restored runner
				}
				s.fail(err)
				return false
			}
			for _, m := range ms {
				emittedSince++
				if !send(m) {
					return false
				}
			}
			if s.o != nil {
				s.o.events.Inc()
			}
			if int64(e.Time) > maxStepped {
				maxStepped = int64(e.Time)
			}
			// Checkpoints are deliberately NOT taken here: feedOne runs
			// inside a reorderer release batch, whose remaining events
			// are in neither the runner state nor the reorderer buffer —
			// a checkpoint cut mid-batch would lose them across a
			// restart. The main loop checkpoints between batches.
			replay = append(replay, e)
			return true
		}
	}

	finish := func() {
		for {
			ms, err := func() (ms []engine.Match, err error) {
				defer func() {
					if p := recover(); p != nil {
						err = panicError{val: p, stack: debug.Stack()}
					}
				}()
				return runner.Flush(), nil
			}()
			if err != nil {
				if !restore(err) {
					return
				}
				continue
			}
			for _, m := range ms {
				if !send(m) {
					return
				}
			}
			return
		}
	}

	// process consumes one received event: watermark advance, schema and
	// sentinel checks, reorder push, stepping the released batch and the
	// between-batches checkpoint. It returns false when the stream must
	// terminate (the cause has been recorded).
	process := func(e event.Event) bool {
		// The watermark advances on every received event, including
		// ones about to dead-letter: they are deterministically
		// refused again if replayed, so a resuming feeder need not
		// re-send them.
		srcLast = int64(e.Seq)
		if err := a.Schema.Check(e.Attrs); err != nil {
			deadLetter(e, fmt.Errorf("%w: %v", ErrSchema, err))
			return true
		}
		if event.SentinelTime(e.Time) {
			// The reorderer would reject these anyway (through its
			// Late callback); classifying them here gives the
			// dead-letter consumer the precise reason.
			deadLetter(e, ErrSentinelTime)
			return true
		}
		if !preserveSeq {
			// Arrival order for the reorderer's stable tie-break. In
			// block mode the preserved Seq is itself strictly increasing
			// in arrival order, so it serves as the tie-break directly.
			e.Seq = arrival
		}
		arrival++
		for _, re := range ro.Push(e) {
			if !feedOne(re) {
				return false
			}
		}
		// Periodic checkpoints happen here, on the release-batch
		// boundary, where runner state + reorderer buffer + watermark
		// together cover every received event exactly once.
		if len(replay) >= ckptEvery && !saveCheckpoint() {
			return false
		}
		// The released batch is fully stepped and its matches sent:
		// publish the advanced stream clock (see CompletedThrough).
		if maxStepped != math.MinInt64 {
			s.completed.Store(maxStepped)
		}
		s.o.syncDuplicates(ro.DuplicatesDropped)
		return true
	}

	// eof flushes the reorderer, takes the drain checkpoint and emits
	// the end-of-input matches, when the input channel closes.
	eof := func() {
		for _, re := range ro.Drain() {
			if !feedOne(re) {
				return
			}
		}
		if len(replay) >= ckptEvery && !saveCheckpoint() {
			return
		}
		if cfg.CheckpointOnDrain && cfg.CheckpointPath != "" && !saveCheckpoint() {
			return
		}
		finish()
		// End of input: nothing below any horizon can arrive anymore.
		s.completed.Store(math.MaxInt64)
	}

	for {
		select {
		case <-ctx.Done():
			s.fail(ctx.Err())
			return
		case e, ok := <-inEv:
			if !ok {
				eof()
				return
			}
			if !process(e) {
				return
			}
		case blk, ok := <-inBlk:
			if !ok {
				eof()
				return
			}
			for i := 0; i < blk.Len(); i++ {
				if !process(*blk.At(i)) {
					return
				}
			}
		}
	}
}

// writeFileAtomic writes data to path via a temp file and rename, so a
// crash mid-write never leaves a torn checkpoint behind.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".ckpt-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Package resilience hardens the streaming evaluation path against
// real-world stream imperfections and process faults: it supervises
// runner pipelines (panic recovery, checkpoint-based restart with
// capped exponential backoff, dead-letter routing for late and
// malformed events) and provides a fault-injection harness for torture
// testing the degradation and recovery machinery.
//
// The paper's model assumes a clean, totally ordered relation; this
// package is where that assumption meets production traffic.
package resilience

import (
	"math/rand"
	"sync"

	"repro/internal/event"
)

// ChaosConfig parameterizes a ChaosSource. All probabilities are in
// [0, 1]; the zero config forwards the stream unchanged.
type ChaosConfig struct {
	// Seed seeds the RNG; runs with the same seed and input are
	// reproducible.
	Seed int64
	// DropProb is the probability of an event being lost in transit.
	DropProb float64
	// DupProb is the probability of an event being delivered twice
	// (at-least-once transport behavior).
	DupProb float64
	// ReorderWindow > 1 shuffles the stream within consecutive chunks
	// of this many events: an event is displaced by at most
	// ReorderWindow-1 positions, so the induced lateness is bounded by
	// the time span of ReorderWindow consecutive events (plus jitter).
	ReorderWindow int
	// JitterProb is the probability of an event's timestamp being
	// perturbed by up to ±MaxJitter ticks (clock skew).
	JitterProb float64
	MaxJitter  event.Duration
	// PanicAfter lists 1-based delivery indices at which FaultHook
	// panics, each exactly once — simulating a processing crash at that
	// point in the pipeline.
	PanicAfter []int64
}

// ChaosStats counts the faults a ChaosSource actually injected.
type ChaosStats struct {
	Forwarded  int64
	Dropped    int64
	Duplicated int64
	Jittered   int64
	Panics     int64
}

// ChaosSource wraps an event channel and injects stream imperfections
// — drops, duplicates, bounded reordering, timestamp jitter — from a
// seeded RNG, plus processing panics via FaultHook. It exists for
// torture tests: a supervised pipeline fed from a ChaosSource whose
// reordering stays within the reorder slack (and whose drop
// probability is zero) must produce exactly the matches of a clean
// run.
type ChaosSource struct {
	cfg ChaosConfig
	out chan event.Event

	mu    sync.Mutex
	stats ChaosStats

	// delivered and pendingPanics are touched only by FaultHook, which
	// runs on the consumer's goroutine.
	delivered    int64
	pendingPanic map[int64]bool
}

// NewChaosSource starts forwarding events from in, with faults, on the
// channel returned by Events. The output closes when in closes.
func NewChaosSource(in <-chan event.Event, cfg ChaosConfig) *ChaosSource {
	c := &ChaosSource{cfg: cfg, out: make(chan event.Event), pendingPanic: make(map[int64]bool)}
	for _, n := range cfg.PanicAfter {
		c.pendingPanic[n] = true
	}
	go c.pump(in)
	return c
}

// Events returns the perturbed stream.
func (c *ChaosSource) Events() <-chan event.Event { return c.out }

// Stats returns the faults injected so far.
func (c *ChaosSource) Stats() ChaosStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// FaultHook panics at the configured delivery indices, once each.
// Install it as the supervisor's fault hook (Config.FaultHook) so that
// crashes strike inside the supervised region, where recovery and
// checkpoint replay must mask them. It must be called from a single
// goroutine (the pipeline's), as the supervisor does.
func (c *ChaosSource) FaultHook(*event.Event) {
	c.delivered++
	if c.pendingPanic[c.delivered] {
		delete(c.pendingPanic, c.delivered)
		c.mu.Lock()
		c.stats.Panics++
		c.mu.Unlock()
		panic("resilience: injected chaos panic")
	}
}

func (c *ChaosSource) pump(in <-chan event.Event) {
	defer close(c.out)
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	window := c.cfg.ReorderWindow
	if window < 1 {
		window = 1
	}
	chunk := make([]event.Event, 0, window)
	flush := func() {
		// Chunked shuffle: displacement within a chunk only, so the
		// reordering bound holds deterministically.
		rng.Shuffle(len(chunk), func(i, j int) { chunk[i], chunk[j] = chunk[j], chunk[i] })
		for _, e := range chunk {
			c.out <- e
			c.bump(func(s *ChaosStats) { s.Forwarded++ })
		}
		chunk = chunk[:0]
	}
	for e := range in {
		if c.cfg.DropProb > 0 && rng.Float64() < c.cfg.DropProb {
			c.bump(func(s *ChaosStats) { s.Dropped++ })
			continue
		}
		if c.cfg.JitterProb > 0 && rng.Float64() < c.cfg.JitterProb && c.cfg.MaxJitter > 0 {
			e.Time += event.Time(rng.Int63n(2*int64(c.cfg.MaxJitter)+1) - int64(c.cfg.MaxJitter))
			c.bump(func(s *ChaosStats) { s.Jittered++ })
		}
		chunk = append(chunk, e)
		if c.cfg.DupProb > 0 && rng.Float64() < c.cfg.DupProb {
			chunk = append(chunk, e)
			c.bump(func(s *ChaosStats) { s.Duplicated++ })
		}
		if len(chunk) >= window {
			flush()
		}
	}
	flush()
}

func (c *ChaosSource) bump(f func(*ChaosStats)) {
	c.mu.Lock()
	f(&c.stats)
	c.mu.Unlock()
}

package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	attempts := 0
	err := Retry(context.Background(), RetryPolicy{Initial: time.Microsecond, Max: time.Millisecond}, func() error {
		attempts++
		if attempts < 4 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v, want nil", err)
	}
	if attempts != 4 {
		t.Fatalf("attempts = %d, want 4", attempts)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	terminal := errors.New("terminal")
	attempts := 0
	err := Retry(context.Background(), RetryPolicy{Initial: time.Microsecond}, func() error {
		attempts++
		return Permanent(terminal)
	})
	if !errors.Is(err, terminal) {
		t.Fatalf("Retry = %v, want %v", err, terminal)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

func TestRetryMaxAttempts(t *testing.T) {
	transient := errors.New("transient")
	attempts := 0
	err := Retry(context.Background(), RetryPolicy{Initial: time.Microsecond, MaxAttempts: 3}, func() error {
		attempts++
		return transient
	})
	if !errors.Is(err, transient) {
		t.Fatalf("Retry = %v, want last error %v", err, transient)
	}
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3", attempts)
	}
}

func TestRetryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	transient := errors.New("transient")
	attempts := 0
	err := Retry(ctx, RetryPolicy{Initial: time.Hour}, func() error {
		attempts++
		cancel() // cancel while the loop would sleep for an hour
		return transient
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Retry = %v, want context.Canceled", err)
	}
	if !errors.Is(err, transient) {
		t.Fatalf("Retry = %v, want the last operation error joined in", err)
	}
	if attempts != 1 {
		t.Fatalf("attempts = %d, want 1", attempts)
	}
}

func TestBackoffCapsAndDoubles(t *testing.T) {
	b := NewBackoff(RetryPolicy{Initial: 10 * time.Millisecond, Max: 40 * time.Millisecond})
	want := []time.Duration{10, 20, 40, 40, 40}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Fatalf("Next %d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Fatalf("after Reset, Next = %v, want 10ms", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	b := NewBackoff(RetryPolicy{Initial: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5})
	for i := 0; i < 200; i++ {
		d := b.Next()
		if d < 50*time.Millisecond || d > 150*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 150ms]", d)
		}
	}
	// Pinned extremes of the uniform variate hit the interval edges.
	b = NewBackoff(RetryPolicy{Initial: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5})
	b.rand = func() float64 { return 0 }
	if got := b.Next(); got != 50*time.Millisecond {
		t.Fatalf("jitter floor = %v, want 50ms", got)
	}
	b.rand = func() float64 { return 1 }
	if got := b.Next(); got != 150*time.Millisecond {
		t.Fatalf("jitter ceiling = %v, want 150ms", got)
	}
}

func TestIsPermanent(t *testing.T) {
	if IsPermanent(errors.New("plain")) {
		t.Fatal("plain error reported permanent")
	}
	if !IsPermanent(Permanent(errors.New("x"))) {
		t.Fatal("Permanent error not detected")
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
}

package ses_test

import (
	"context"
	"fmt"
	"os"

	"repro"
)

// exampleSchema is a minimal schema used by the examples: an entity
// key and an event type.
func exampleSchema() *ses.Schema {
	return ses.MustSchema(
		ses.Field{Name: "ID", Type: ses.TypeInt},
		ses.Field{Name: "L", Type: ses.TypeString},
	)
}

// ExampleCompile shows the core flow: build a relation, compile a
// query in the textual pattern language and match.
func ExampleCompile() {
	schema := exampleSchema()
	rel := ses.NewRelation(schema)
	for i, l := range []string{"C", "P", "D", "P", "B"} {
		rel.MustAppend(ses.Time(i*3600), ses.Int(1), ses.String(l))
	}

	q, err := ses.Compile(`
		PATTERN PERMUTE(c, p+, d) THEN (b)
		WHERE c.L = 'C' AND p.L = 'P' AND d.L = 'D' AND b.L = 'B'
		WITHIN 264h`, schema)
	if err != nil {
		fmt.Println(err)
		return
	}
	matches, _, err := q.Match(rel)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, m := range matches {
		fmt.Println(m)
	}
	// Output:
	// {c/e0, p+/e1, d/e2, p+/e3, b/e4}
}

// ExampleNewPattern builds the same pattern programmatically.
func ExampleNewPattern() {
	p, err := ses.NewPattern().
		Set(ses.Var("c"), ses.Plus("p"), ses.Var("d")).
		Set(ses.Var("b")).
		WhereConst("c", "L", ses.Eq, ses.String("C")).
		Within(264 * ses.Hour).
		Build()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(p.Sets[0][1], p.Window)
	// Output:
	// p+ 11d
}

// ExampleAnalyze classifies a pattern per the paper's complexity
// cases (Section 4.4).
func ExampleAnalyze() {
	p := ses.MustParseQuery(`
		PATTERN (x, y) WHERE x.L = 'A' AND y.L = 'B' WITHIN 1h`)
	a := ses.Analyze(p)
	fmt.Println(a.Deterministic)
	fmt.Println(a.Sets[0].Bound)
	// Output:
	// true
	// O(1)
}

// ExampleQuery_Runner evaluates incrementally, one event at a time.
func ExampleQuery_Runner() {
	schema := exampleSchema()
	q := ses.MustCompile(`PATTERN (a) THEN (b)
		WHERE a.L = 'A' AND b.L = 'B' WITHIN 10s`, schema)
	r := q.Runner()
	for i, l := range []string{"A", "B"} {
		e := ses.Event{Seq: i, Time: ses.Time(i), Attrs: []ses.Value{ses.Int(1), ses.String(l)}}
		if _, err := r.Step(&e); err != nil {
			fmt.Println(err)
			return
		}
	}
	for _, m := range r.Flush() {
		fmt.Println(m)
	}
	// Output:
	// {a/e0, b/e1}
}

// ExampleRunner_Stream evaluates a channel of events; matches surface
// as instances complete.
func ExampleRunner_Stream() {
	schema := exampleSchema()
	q := ses.MustCompile(`PATTERN (a) THEN (b)
		WHERE a.L = 'A' AND b.L = 'B' WITHIN 10s`, schema)
	r := q.Runner()
	in := make(chan ses.Event, 4)
	in <- ses.Event{Time: 0, Attrs: []ses.Value{ses.Int(1), ses.String("A")}}
	in <- ses.Event{Time: 1, Attrs: []ses.Value{ses.Int(1), ses.String("B")}}
	close(in)
	for m := range r.Stream(context.Background(), in) {
		fmt.Println(m)
	}
	// Output:
	// {a/e0, b/e1}
}

// ExampleQuery_MatchPartitioned evaluates a query per entity — the
// paper's "for each patient" reading.
func ExampleQuery_MatchPartitioned() {
	schema := exampleSchema()
	rel := ses.NewRelation(schema)
	// Two interleaved patients.
	rel.MustAppend(0, ses.Int(1), ses.String("A"))
	rel.MustAppend(1, ses.Int(2), ses.String("A"))
	rel.MustAppend(2, ses.Int(1), ses.String("B"))
	rel.MustAppend(3, ses.Int(2), ses.String("B"))
	q := ses.MustCompile(`PATTERN (a) THEN (b)
		WHERE a.L = 'A' AND b.L = 'B' WITHIN 1h`, schema)
	matches, _, err := q.MatchPartitioned(rel, "ID")
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(len(matches))
	// Output:
	// 2
}

// ExampleNewReorderer restores timestamp order in a disordered feed
// within a lateness bound.
func ExampleNewReorderer() {
	ro := ses.NewReorderer(5)
	mk := func(t ses.Time) ses.Event {
		return ses.Event{Time: t, Attrs: []ses.Value{ses.Int(1), ses.String("A")}}
	}
	var released []ses.Event
	for _, t := range []ses.Time{10, 8, 12, 20} {
		released = append(released, ro.Push(mk(t))...)
	}
	released = append(released, ro.Drain()...)
	for _, e := range released {
		fmt.Print(e.Time, " ")
	}
	fmt.Println()
	// Output:
	// 8 10 12 20
}

// ExampleQuery_WriteDOT renders the compiled automaton for Graphviz.
func ExampleQuery_WriteDOT() {
	q := ses.MustCompile(`PATTERN (a) WHERE a.L = 'A' WITHIN 1h`, exampleSchema())
	_ = q.WriteDOT(os.Stdout, "tiny")
	// Output:
	// digraph "tiny" {
	//   rankdir=LR;
	//   node [shape=circle, fontsize=11];
	//   __start [shape=point, style=invis];
	//   q0 [label="∅", shape=circle];
	//   q1 [label="a", shape=doublecircle];
	//   __start -> q0;
	//   q0 -> q1 [label="a, {a.L = \"A\"}"];
	// }
}

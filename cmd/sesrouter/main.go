// Command sesrouter fronts a partitioned sesd cluster: it accepts the
// same HTTP API as a single sesd node, splits NDJSON ingest batches by
// the partition key, stamps every event with a cluster-global sequence
// number and fans the sub-batches to the owning nodes — failing over
// to a partition's warm standby when the leader refuses or disappears.
// Query registration fans to every partition, and the read endpoints
// merge the per-partition match streams into one deterministic stream
// that is byte-identical to what a single sesd evaluating the whole
// stream would serve.
//
// Usage:
//
//	sesrouter -cluster cluster.conf -schema 'ID:int,L:string,V:float,U:string'
//
// Flags:
//
//	-addr ADDR          HTTP listen address (default :8133)
//	-cluster FILE       membership file (required; see docs/OPERATIONS.md §8)
//	-schema SPEC        event schema as name:type,... (required; must
//	                    match the nodes')
//	-inflight N         queued-but-unacknowledged sub-batches per
//	                    partition before ingest blocks (default 8)
//	-health-every D     node health polling interval (default 500ms)
//	-retry-attempts N   delivery attempts per sub-batch before the
//	                    batch fails (default 20, exponential backoff
//	                    10ms..2s between attempts)
//
// The HTTP API mirrors sesd: POST /events, POST/GET/DELETE /queries,
// GET /queries/{id}/matches (?from, ?follow, NDJSON or SSE),
// GET /queries/{id}/stats, GET /healthz (the aggregated cluster view)
// and GET /metrics.
//
// On startup the router probes every partition for its persisted
// sequence high-water and resumes the global numbering above it, so a
// router restart cannot re-issue sequence numbers the cluster has
// already seen. On SIGTERM or SIGINT it stops accepting requests and
// shuts down; in-flight sub-batches are delivered first.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/resilience"
)

func main() {
	var (
		addr        = flag.String("addr", ":8133", "HTTP listen address")
		clusterFile = flag.String("cluster", "", "membership file (required)")
		schemaSpec  = flag.String("schema", "", "event schema as name:type,... (types: string, int, float)")
		inflight    = flag.Int("inflight", 0, "queued-but-unacknowledged sub-batches per partition (default 8)")
		healthEvery = flag.Duration("health-every", 0, "node health polling interval (default 500ms)")
		attempts    = flag.Int("retry-attempts", 0, "delivery attempts per sub-batch before the batch fails (default 20)")
	)
	flag.Parse()
	if err := run(*addr, *clusterFile, *schemaSpec, *inflight, *healthEvery, *attempts, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sesrouter:", err)
		os.Exit(1)
	}
}

// parseSchema parses "name:type,name:type,..." into a schema.
func parseSchema(spec string) (*ses.Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-schema is required (e.g. 'ID:int,L:string,V:float,U:string')")
	}
	var fields []ses.Field
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema field %q: want name:type", part)
		}
		var t ses.Type
		switch strings.ToLower(strings.TrimSpace(typ)) {
		case "string", "str", "text":
			t = ses.TypeString
		case "int", "integer", "int64":
			t = ses.TypeInt
		case "float", "float64", "double", "real":
			t = ses.TypeFloat
		default:
			return nil, fmt.Errorf("schema field %q: unknown type %q", name, typ)
		}
		fields = append(fields, ses.Field{Name: strings.TrimSpace(name), Type: t})
	}
	return ses.NewSchema(fields...)
}

// run starts the router and blocks until a termination signal. When
// ready is non-nil it receives the resolved listen address once the
// router accepts connections (used by tests).
func run(addr, clusterFile, schemaSpec string, inflight int, healthEvery time.Duration, attempts int, logw *os.File, ready chan<- string) error {
	if clusterFile == "" {
		return fmt.Errorf("-cluster is required (the membership file)")
	}
	schema, err := parseSchema(schemaSpec)
	if err != nil {
		return err
	}
	m, err := cluster.LoadMembership(clusterFile)
	if err != nil {
		return err
	}
	reg := ses.NewMetricsRegistry()
	router, err := cluster.NewRouter(cluster.RouterOptions{
		Membership:  m,
		Schema:      schema,
		InFlight:    inflight,
		Registry:    reg,
		HealthEvery: healthEvery,
		Retry:       resilience.RetryPolicy{MaxAttempts: attempts},
	})
	if err != nil {
		return err
	}
	startCtx, cancelStart := context.WithTimeout(context.Background(), 30*time.Second)
	err = router.Start(startCtx)
	cancelStart()
	if err != nil {
		return err
	}
	defer router.Close()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: router.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "sesrouter: routing %d partitions (key %s, %d slots) on http://%s/, next seq %d\n",
		len(m.Partitions), m.Key, m.Slots, ln.Addr(), router.NextSeq())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	stop()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutCtx); err != nil {
		return err
	}
	fmt.Fprintln(logw, "sesrouter: stopped")
	return nil
}

// Command sesmatch evaluates a SES pattern query over a CSV event
// relation and prints the matching substitutions.
//
// Usage:
//
//	sesmatch -query 'PATTERN PERMUTE(c, p+, d) THEN (b) WHERE ... WITHIN 264h' events.csv
//	sesmatch -query-file q1.ses -metrics -filter events.csv
//
// Flags:
//
//	-query / -query-file   the query text (one of the two is required)
//	-filter                enable the event filtering optimisation
//	-maximal               drop non-maximal matches on tied timestamps
//	-metrics               print execution metrics to stderr
//	-analyze               print the pattern's complexity classification
//	-dot FILE              write the compiled automaton as Graphviz DOT
//	-sort                  sort the input by time instead of failing
//	-partition A           evaluate per partition of attribute A
//	-limit N               print at most N matches (0 = all)
//	-json                  print matches as JSON, one object per line
//
// Matches are printed one per line in the paper's substitution
// notation, followed by the bound events when -verbose is given.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	var (
		queryText = flag.String("query", "", "query text")
		queryFile = flag.String("query-file", "", "file containing the query text")
		filter    = flag.Bool("filter", false, "enable the event filtering optimisation (Section 4.5)")
		maximal   = flag.Bool("maximal", false, "drop non-maximal matches among tied timestamps")
		metrics   = flag.Bool("metrics", false, "print execution metrics to stderr")
		analyze   = flag.Bool("analyze", false, "print the complexity classification to stderr")
		dotFile   = flag.String("dot", "", "write the compiled automaton as Graphviz DOT to this file")
		sortInput = flag.Bool("sort", false, "sort the input by time instead of failing on disorder")
		partition = flag.String("partition", "", "evaluate per partition of this attribute (the paper's \"for each patient\")")
		limit     = flag.Int("limit", 0, "print at most N matches (0 = all)")
		verbose   = flag.Bool("verbose", false, "print the bound events of every match")
		asJSON    = flag.Bool("json", false, "print matches as JSON, one object per line")
	)
	flag.Parse()
	if err := run(*queryText, *queryFile, *filter, *maximal, *metrics, *analyze,
		*dotFile, *sortInput, *partition, *limit, *verbose, *asJSON, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "sesmatch:", err)
		os.Exit(1)
	}
}

func run(queryText, queryFile string, filter, maximal, metrics, analyze bool,
	dotFile string, sortInput bool, partition string, limit int, verbose, asJSON bool, args []string) error {

	switch {
	case queryText == "" && queryFile == "":
		return fmt.Errorf("one of -query or -query-file is required")
	case queryText != "" && queryFile != "":
		return fmt.Errorf("-query and -query-file are mutually exclusive")
	case queryFile != "":
		b, err := os.ReadFile(queryFile)
		if err != nil {
			return err
		}
		queryText = string(b)
	}
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one input CSV file, got %d arguments", len(args))
	}

	rel, err := ses.LoadCSVFile(args[0], ses.ReadOptions{Sort: sortInput})
	if err != nil {
		return err
	}
	q, err := ses.Compile(queryText, rel.Schema())
	if err != nil {
		return err
	}
	if analyze {
		fmt.Fprint(os.Stderr, q.Explain())
	}
	if dotFile != "" {
		f, err := os.Create(dotFile)
		if err != nil {
			return err
		}
		if err := q.WriteDOT(f, "ses"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	var matches []ses.Match
	var m ses.Metrics
	if partition != "" {
		matches, m, err = q.MatchPartitioned(rel, partition, ses.WithFilter(filter))
	} else {
		matches, m, err = q.Match(rel, ses.WithFilter(filter))
	}
	if err != nil {
		return err
	}
	if maximal {
		matches = ses.FilterMaximal(matches)
	}
	for i, match := range matches {
		if limit > 0 && i >= limit {
			if !asJSON {
				fmt.Printf("... and %d more matches\n", len(matches)-limit)
			}
			break
		}
		if asJSON {
			b, err := ses.MatchJSON(match, rel.Schema())
			if err != nil {
				return err
			}
			fmt.Println(string(b))
			continue
		}
		fmt.Println(match)
		if verbose {
			for _, e := range match.Events() {
				fmt.Printf("    %s\n", e)
			}
		}
	}
	if metrics {
		fmt.Fprintf(os.Stderr, "%d events, %d matches, %s\n", rel.Len(), len(matches), m)
	}
	return nil
}

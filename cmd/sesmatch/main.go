// Command sesmatch evaluates a SES pattern query over a CSV event
// relation and prints the matching substitutions.
//
// Usage:
//
//	sesmatch -query 'PATTERN PERMUTE(c, p+, d) THEN (b) WHERE ... WITHIN 264h' events.csv
//	sesmatch -query-file q1.ses -metrics -filter events.csv
//
// Flags:
//
//	-query / -query-file   the query text (one of the two is required)
//	-filter                enable the event filtering optimisation
//	-maximal               drop non-maximal matches on tied timestamps
//	-metrics               print execution metrics to stderr
//	-analyze               print the pattern's complexity classification
//	-dot FILE              write the compiled automaton as Graphviz DOT
//	-sort                  sort the input by time instead of failing
//	-partition A           evaluate per partition of attribute A
//	-workers N             parallel workers for -partition (0 = GOMAXPROCS)
//	-limit N               print at most N matches (0 = all)
//	-json                  print matches as JSON, one object per line
//	-checkpoint FILE       periodically snapshot the evaluation state
//	-checkpoint-every N    events between snapshots (default 1000)
//	-resume                restore state from -checkpoint and continue
//	-trace FILE            write instance-lifecycle trace as JSONL
//	-debug-addr ADDR       serve /metrics and /debug/pprof on ADDR
//
// With -trace FILE every instance-lifecycle event of the evaluation —
// spawn, transition, expire, shed, match — is appended to FILE as one
// JSON object per line (see engine.TraceRecord for the schema). With
// -debug-addr the process serves the observability HTTP surface:
// Prometheus metrics on /metrics, expvar on /debug/vars and the
// standard profiling handlers under /debug/pprof/.
//
// Matches are printed one per line in the paper's substitution
// notation, followed by the bound events when -verbose is given.
//
// A query with an AGGREGATE clause runs on the enumeration-free
// aggregation path: no matches are materialized, and the output is the
// aggregate stats document (one JSON object: per-partition groups with
// their counts and sums, HAVING applied) instead of match lines.
// -partition, -checkpoint and -maximal do not apply to aggregate runs.
//
// With -checkpoint, evaluation runs incrementally and persists its
// state (atomically, via rename) every -checkpoint-every events; a run
// that crashed or was killed can be repeated with -resume added and
// will skip the already-consumed prefix of the input, emitting only
// the matches not yet completed at the last checkpoint. Matches are
// printed when evaluation finishes, so matches completed before the
// checkpoint appear on the original (completed) run's output, not the
// resumed run's; use the supervised streaming API (Query.Supervise)
// when every match must be delivered across crashes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

// options collects the command line configuration of one run.
type options struct {
	queryText       string
	queryFile       string
	filter          bool
	noCompile       bool
	maximal         bool
	metrics         bool
	analyze         bool
	dotFile         string
	sortInput       bool
	partition       string
	workers         int
	limit           int
	verbose         bool
	asJSON          bool
	checkpoint      string
	checkpointEvery int
	resume          bool
	traceFile       string
	debugAddr       string
	args            []string
}

func main() {
	var o options
	flag.StringVar(&o.queryText, "query", "", "query text")
	flag.StringVar(&o.queryFile, "query-file", "", "file containing the query text")
	flag.BoolVar(&o.filter, "filter", false, "enable the event filtering optimisation (Section 4.5)")
	flag.BoolVar(&o.noCompile, "no-compile", false, "evaluate conditions through the generic interpreter instead of compiled predicates (triage aid)")
	flag.BoolVar(&o.maximal, "maximal", false, "drop non-maximal matches among tied timestamps")
	flag.BoolVar(&o.metrics, "metrics", false, "print execution metrics to stderr")
	flag.BoolVar(&o.analyze, "analyze", false, "print the complexity classification to stderr")
	flag.StringVar(&o.dotFile, "dot", "", "write the compiled automaton as Graphviz DOT to this file")
	flag.BoolVar(&o.sortInput, "sort", false, "sort the input by time instead of failing on disorder")
	flag.StringVar(&o.partition, "partition", "", "evaluate per partition of this attribute (the paper's \"for each patient\")")
	flag.IntVar(&o.workers, "workers", 0, "parallel workers for -partition (0 = GOMAXPROCS; output is identical to sequential)")
	flag.IntVar(&o.limit, "limit", 0, "print at most N matches (0 = all)")
	flag.BoolVar(&o.verbose, "verbose", false, "print the bound events of every match")
	flag.BoolVar(&o.asJSON, "json", false, "print matches as JSON, one object per line")
	flag.StringVar(&o.checkpoint, "checkpoint", "", "snapshot the evaluation state to this file periodically")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 1000, "events between checkpoint snapshots")
	flag.BoolVar(&o.resume, "resume", false, "restore state from -checkpoint and skip the consumed input prefix")
	flag.StringVar(&o.traceFile, "trace", "", "write the instance-lifecycle trace to this file as JSON lines")
	flag.StringVar(&o.debugAddr, "debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	o.args = flag.Args()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "sesmatch:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	queryText := o.queryText
	switch {
	case queryText == "" && o.queryFile == "":
		return fmt.Errorf("one of -query or -query-file is required")
	case queryText != "" && o.queryFile != "":
		return fmt.Errorf("-query and -query-file are mutually exclusive")
	case o.queryFile != "":
		b, err := os.ReadFile(o.queryFile)
		if err != nil {
			return err
		}
		queryText = string(b)
	}
	if len(o.args) != 1 {
		return fmt.Errorf("expected exactly one input CSV file, got %d arguments", len(o.args))
	}
	if o.resume && o.checkpoint == "" {
		return fmt.Errorf("-resume requires -checkpoint")
	}
	if o.checkpoint != "" && o.partition != "" {
		return fmt.Errorf("-checkpoint and -partition are mutually exclusive: sharded and partitioned runs cannot snapshot a single evaluator state")
	}
	if o.workers != 0 && o.partition == "" {
		return fmt.Errorf("-workers requires -partition: only partitioned evaluation parallelizes")
	}
	if o.workers != 0 && (o.checkpoint != "" || o.resume) {
		return fmt.Errorf("-workers is incompatible with -checkpoint/-resume")
	}

	rel, err := ses.LoadCSVFile(o.args[0], ses.ReadOptions{Sort: o.sortInput})
	if err != nil {
		return err
	}
	q, err := ses.Compile(queryText, rel.Schema())
	if err != nil {
		return err
	}
	if o.analyze {
		fmt.Fprint(os.Stderr, q.Explain())
	}
	if q.HasAggregate() {
		switch {
		case o.partition != "":
			return fmt.Errorf("-partition is not supported for AGGREGATE queries; use PER PARTITION in the query")
		case o.checkpoint != "" || o.resume:
			return fmt.Errorf("-checkpoint is not supported for AGGREGATE queries")
		case o.maximal:
			return fmt.Errorf("-maximal does not apply to AGGREGATE queries: matches are folded, not enumerated")
		}
	}
	if o.dotFile != "" {
		f, err := os.Create(o.dotFile)
		if err != nil {
			return err
		}
		if err := q.WriteDOT(f, "ses"); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}

	opts := []ses.Option{ses.WithFilter(o.filter)}
	if o.noCompile {
		opts = append(opts, ses.WithCompiledChecks(false))
	}
	var traceFile *os.File
	var traceErr func() error
	if o.traceFile != "" {
		traceFile, err = os.Create(o.traceFile)
		if err != nil {
			return err
		}
		topt, terr, err := q.TraceJSON(traceFile)
		if err != nil {
			traceFile.Close()
			return err
		}
		opts = append(opts, topt)
		traceErr = terr
	}
	if o.debugAddr != "" {
		reg := ses.NewMetricsRegistry()
		opts = append(opts, ses.WithMetricsRegistry(reg))
		srv, err := ses.ServeDebug(o.debugAddr, reg)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "debug endpoints on http://%s/ (/metrics, /debug/pprof)\n", srv.Addr)
	}

	var matches []ses.Match
	var aggData []byte
	var m ses.Metrics
	switch {
	case q.HasAggregate():
		aggData, m, err = q.Aggregate(rel, opts...)
	case o.checkpoint != "":
		matches, m, err = runCheckpointed(q, rel, o, opts)
	case o.partition != "":
		matches, m, err = q.MatchPartitionedParallel(rel, o.partition, o.workers, opts...)
	default:
		matches, m, err = q.Match(rel, opts...)
	}
	if traceFile != nil {
		if werr := traceErr(); werr != nil && err == nil {
			err = fmt.Errorf("trace: %w", werr)
		}
		if cerr := traceFile.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return err
	}
	if aggData != nil {
		fmt.Println(string(aggData))
		if o.metrics {
			fmt.Fprintf(os.Stderr, "%d events, %d matches folded, %s\n", rel.Len(), m.Matches, m)
		}
		return nil
	}
	if o.maximal {
		matches = ses.FilterMaximal(matches)
	}
	for i, match := range matches {
		if o.limit > 0 && i >= o.limit {
			if !o.asJSON {
				fmt.Printf("... and %d more matches\n", len(matches)-o.limit)
			}
			break
		}
		if o.asJSON {
			b, err := ses.MatchJSON(match, rel.Schema())
			if err != nil {
				return err
			}
			fmt.Println(string(b))
			continue
		}
		fmt.Println(match)
		if o.verbose {
			for _, e := range match.Events() {
				fmt.Printf("    %s\n", e)
			}
		}
	}
	if o.metrics {
		fmt.Fprintf(os.Stderr, "%d events, %d matches, %s\n", rel.Len(), len(matches), m)
	}
	return nil
}

// runCheckpointed evaluates the query incrementally, persisting the
// runner state to o.checkpoint every o.checkpointEvery events. With
// o.resume, evaluation restores the checkpointed state first and skips
// the input events it already consumed, so only matches that were
// still pending at the checkpoint are emitted.
func runCheckpointed(q *ses.Query, rel *ses.Relation, o options, opts []ses.Option) ([]ses.Match, ses.Metrics, error) {
	if q.Variants() != 1 {
		return nil, ses.Metrics{}, fmt.Errorf("-checkpoint does not support queries with optional variables")
	}
	var r *ses.Runner
	if o.resume {
		f, err := os.Open(o.checkpoint)
		switch {
		case err == nil:
			r, err = q.RestoreRunner(f, opts...)
			f.Close()
			if err != nil {
				return nil, ses.Metrics{}, fmt.Errorf("resuming from %s: %w", o.checkpoint, err)
			}
		case os.IsNotExist(err):
			r = q.Runner(opts...) // nothing to resume yet: cold start
		default:
			return nil, ses.Metrics{}, err
		}
	} else {
		r = q.Runner(opts...)
	}

	every := o.checkpointEvery
	if every <= 0 {
		every = 1000
	}
	save := func() error {
		tmp := o.checkpoint + ".tmp"
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		if err := r.WriteSnapshot(f); err != nil {
			f.Close()
			os.Remove(tmp)
			return err
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return err
		}
		return os.Rename(tmp, o.checkpoint)
	}

	// EventsProcessed doubles as the position in the input relation:
	// every relation event is one Step call.
	start := int(r.Metrics().EventsProcessed)
	if start > rel.Len() {
		return nil, ses.Metrics{}, fmt.Errorf("checkpoint has consumed %d events but the input has only %d", start, rel.Len())
	}
	var matches []ses.Match
	for i := start; i < rel.Len(); i++ {
		ms, err := r.Step(rel.Event(i))
		if err != nil {
			return nil, r.Metrics(), err
		}
		matches = append(matches, ms...)
		if (i+1-start)%every == 0 {
			if err := save(); err != nil {
				return nil, r.Metrics(), fmt.Errorf("checkpoint: %w", err)
			}
		}
	}
	// Final snapshot, so a later -resume run knows the input was fully
	// consumed and only replays the flush.
	if err := save(); err != nil {
		return nil, r.Metrics(), fmt.Errorf("checkpoint: %w", err)
	}
	matches = append(matches, r.Flush()...)
	return matches, r.Metrics(), nil
}

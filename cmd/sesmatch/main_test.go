package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/paperdata"
)

// writeFixture saves the paper's Figure 1 relation as CSV and returns
// its path.
func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.csv")
	if err := ses.SaveCSVFile(path, paperdata.Relation()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueryOverCSV(t *testing.T) {
	path := writeFixture(t)
	dot := filepath.Join(t.TempDir(), "a.dot")
	err := run(paperdata.QueryQ1Text, "", true, false, true, true, dot, false, "", 0, true, false, []string{path})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "doublecircle") {
		t.Errorf("DOT file content suspicious")
	}
}

func TestRunQueryFromFile(t *testing.T) {
	path := writeFixture(t)
	qf := filepath.Join(t.TempDir(), "q.ses")
	if err := os.WriteFile(qf, []byte(paperdata.QueryQ1Text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", qf, false, true, false, false, "", false, "", 1, false, false, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	path := writeFixture(t)
	cases := []struct {
		name string
		frag string
		call func() error
	}{
		{"no query", "required", func() error {
			return run("", "", false, false, false, false, "", false, "", 0, false, false, []string{path})
		}},
		{"both query sources", "mutually exclusive", func() error {
			return run("x", "y", false, false, false, false, "", false, "", 0, false, false, []string{path})
		}},
		{"missing query file", "", func() error {
			return run("", "/nonexistent.ses", false, false, false, false, "", false, "", 0, false, false, []string{path})
		}},
		{"no input", "exactly one input", func() error {
			return run(paperdata.QueryQ1Text, "", false, false, false, false, "", false, "", 0, false, false, nil)
		}},
		{"missing input", "", func() error {
			return run(paperdata.QueryQ1Text, "", false, false, false, false, "", false, "", 0, false, false, []string{"/nope.csv"})
		}},
		{"bad query", "query:", func() error {
			return run("PATTERN", "", false, false, false, false, "", false, "", 0, false, false, []string{path})
		}},
		{"bad dot path", "", func() error {
			return run(paperdata.QueryQ1Text, "", false, false, false, false, "/nonexistent/dir/a.dot", false, "", 0, false, false, []string{path})
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatalf("expected error")
			}
			if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error = %v, want containing %q", err, c.frag)
			}
		})
	}
}

func TestRunSortOption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unsorted.csv")
	csv := "T:time,ID:int,L:string,V:float,U:string\n10,1,B,0,x\n5,1,C,0,x\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	q := "PATTERN (c) WHERE c.L = 'C' WITHIN 1h"
	if err := run(q, "", false, false, false, false, "", false, "", 0, false, false, []string{path}); err == nil {
		t.Errorf("unsorted input should fail without -sort")
	}
	if err := run(q, "", false, false, false, false, "", true, "", 0, false, false, []string{path}); err != nil {
		t.Errorf("-sort should accept unsorted input: %v", err)
	}
}

func TestRunPartitioned(t *testing.T) {
	path := writeFixture(t)
	if err := run(paperdata.QueryQ1Text, "", true, false, false, false, "", false, "ID", 0, false, false, []string{path}); err != nil {
		t.Fatal(err)
	}
	if err := run(paperdata.QueryQ1Text, "", false, false, false, false, "", false, "NOPE", 0, false, false, []string{path}); err == nil {
		t.Errorf("unknown partition attribute accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeFixture(t)
	if err := run(paperdata.QueryQ1Text, "", true, false, false, false, "", false, "", 0, false, true, []string{path}); err != nil {
		t.Fatal(err)
	}
}

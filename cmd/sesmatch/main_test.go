package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/paperdata"
)

// writeFixture saves the paper's Figure 1 relation as CSV and returns
// its path.
func writeFixture(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "events.csv")
	if err := ses.SaveCSVFile(path, paperdata.Relation()); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunQueryOverCSV(t *testing.T) {
	path := writeFixture(t)
	dot := filepath.Join(t.TempDir(), "a.dot")
	err := run(options{queryText: paperdata.QueryQ1Text, filter: true, metrics: true,
		analyze: true, dotFile: dot, verbose: true, args: []string{path}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), "doublecircle") {
		t.Errorf("DOT file content suspicious")
	}
}

func TestRunTraceAndDebugAddr(t *testing.T) {
	path := writeFixture(t)
	traceOut := filepath.Join(t.TempDir(), "trace.jsonl")
	err := run(options{queryText: paperdata.QueryQ1Text, filter: true,
		traceFile: traceOut, debugAddr: "127.0.0.1:0", args: []string{path}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	if len(lines) < 2 {
		t.Fatalf("trace has %d lines, want several lifecycle events", len(lines))
	}
	var kinds []string
	for _, ln := range lines {
		for _, k := range []string{"spawn", "transition", "expire", "match"} {
			if strings.Contains(ln, `"kind":"`+k+`"`) {
				kinds = append(kinds, k)
			}
		}
	}
	joined := strings.Join(kinds, ",")
	for _, k := range []string{"spawn", "transition", "match"} {
		if !strings.Contains(joined, k) {
			t.Errorf("trace lacks %q records:\n%s", k, string(b))
		}
	}
}

func TestRunQueryFromFile(t *testing.T) {
	path := writeFixture(t)
	qf := filepath.Join(t.TempDir(), "q.ses")
	if err := os.WriteFile(qf, []byte(paperdata.QueryQ1Text), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(options{queryFile: qf, maximal: true, limit: 1, args: []string{path}}); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgumentErrors(t *testing.T) {
	path := writeFixture(t)
	cases := []struct {
		name string
		frag string
		o    options
	}{
		{"no query", "required", options{args: []string{path}}},
		{"both query sources", "mutually exclusive", options{queryText: "x", queryFile: "y", args: []string{path}}},
		{"missing query file", "", options{queryFile: "/nonexistent.ses", args: []string{path}}},
		{"no input", "exactly one input", options{queryText: paperdata.QueryQ1Text}},
		{"missing input", "", options{queryText: paperdata.QueryQ1Text, args: []string{"/nope.csv"}}},
		{"bad query", "query:", options{queryText: "PATTERN", args: []string{path}}},
		{"bad dot path", "", options{queryText: paperdata.QueryQ1Text, dotFile: "/nonexistent/dir/a.dot", args: []string{path}}},
		{"resume without checkpoint", "-resume requires", options{queryText: paperdata.QueryQ1Text, resume: true, args: []string{path}}},
		{"checkpoint with partition", "mutually exclusive", options{queryText: paperdata.QueryQ1Text,
			checkpoint: "c.ckpt", partition: "ID", args: []string{path}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.o)
			if err == nil {
				t.Fatalf("expected error")
			}
			if c.frag != "" && !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error = %v, want containing %q", err, c.frag)
			}
		})
	}
}

func TestRunSortOption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "unsorted.csv")
	csv := "T:time,ID:int,L:string,V:float,U:string\n10,1,B,0,x\n5,1,C,0,x\n"
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	q := "PATTERN (c) WHERE c.L = 'C' WITHIN 1h"
	if err := run(options{queryText: q, args: []string{path}}); err == nil {
		t.Errorf("unsorted input should fail without -sort")
	}
	if err := run(options{queryText: q, sortInput: true, args: []string{path}}); err != nil {
		t.Errorf("-sort should accept unsorted input: %v", err)
	}
}

func TestRunPartitioned(t *testing.T) {
	path := writeFixture(t)
	if err := run(options{queryText: paperdata.QueryQ1Text, filter: true, partition: "ID", args: []string{path}}); err != nil {
		t.Fatal(err)
	}
	if err := run(options{queryText: paperdata.QueryQ1Text, partition: "NOPE", args: []string{path}}); err == nil {
		t.Errorf("unknown partition attribute accepted")
	}
}

func TestRunJSONOutput(t *testing.T) {
	path := writeFixture(t)
	if err := run(options{queryText: paperdata.QueryQ1Text, filter: true, asJSON: true, args: []string{path}}); err != nil {
		t.Fatal(err)
	}
}

// TestRunCheckpointed: a checkpointing run succeeds, leaves a
// restorable snapshot behind, and a -resume run over the final
// snapshot replays only the flush.
func TestRunCheckpointed(t *testing.T) {
	path := writeFixture(t)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if err := run(options{queryText: paperdata.QueryQ1Text, metrics: true,
		checkpoint: ckpt, checkpointEvery: 3, args: []string{path}}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}
	// Resuming from the completed run's snapshot consumes no further
	// events and must not fail.
	if err := run(options{queryText: paperdata.QueryQ1Text,
		checkpoint: ckpt, resume: true, args: []string{path}}); err != nil {
		t.Fatal(err)
	}
	// Resuming against a shorter input than the checkpoint consumed is
	// an error, not silent corruption.
	short := filepath.Join(t.TempDir(), "short.csv")
	rel := paperdata.Relation()
	half := ses.NewRelation(rel.Schema())
	for i := 0; i < 2; i++ {
		e := rel.Event(i)
		half.MustAppend(e.Time, e.Attrs...)
	}
	if err := ses.SaveCSVFile(short, half); err != nil {
		t.Fatal(err)
	}
	err := run(options{queryText: paperdata.QueryQ1Text, checkpoint: ckpt, resume: true, args: []string{short}})
	if err == nil || !strings.Contains(err.Error(), "consumed") {
		t.Errorf("resume over truncated input: err = %v", err)
	}
}

// TestRunResumeEquivalence: interrupting an evaluation at a checkpoint
// and resuming emits exactly the matches the uninterrupted run emits
// after that point.
func TestRunResumeEquivalence(t *testing.T) {
	relation := paperdata.Relation()
	q, err := ses.Compile(paperdata.QueryQ1Text, relation.Schema())
	if err != nil {
		t.Fatal(err)
	}

	// Uninterrupted reference run.
	var full []string
	r := q.Runner()
	for i := 0; i < relation.Len(); i++ {
		ms, err := r.Step(relation.Event(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			full = append(full, m.String())
		}
	}
	for _, m := range r.Flush() {
		full = append(full, m.String())
	}

	// Crashed run: consume half the input, checkpoint, abandon.
	cut := relation.Len() / 2
	r2 := q.Runner()
	var before []string
	for i := 0; i < cut; i++ {
		ms, err := r2.Step(relation.Event(i))
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range ms {
			before = append(before, m.String())
		}
	}
	ckpt := filepath.Join(t.TempDir(), "crash.ckpt")
	f, err := os.Create(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.WriteSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Resumed run over the same CSV via the command path.
	path := writeFixture(t)
	var after []string
	{
		r3, err := func() (*ses.Runner, error) {
			fh, err := os.Open(ckpt)
			if err != nil {
				return nil, err
			}
			defer fh.Close()
			return q.RestoreRunner(fh)
		}()
		if err != nil {
			t.Fatal(err)
		}
		for i := int(r3.Metrics().EventsProcessed); i < relation.Len(); i++ {
			ms, err := r3.Step(relation.Event(i))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range ms {
				after = append(after, m.String())
			}
		}
		for _, m := range r3.Flush() {
			after = append(after, m.String())
		}
	}
	combined := append(append([]string{}, before...), after...)
	if strings.Join(combined, "\n") != strings.Join(full, "\n") {
		t.Errorf("resumed run diverges:\nfull:     %v\ncombined: %v", full, combined)
	}
	// And the command-level resume path over the same checkpoint runs
	// cleanly end to end.
	if err := run(options{queryText: paperdata.QueryQ1Text, checkpoint: ckpt, resume: true, args: []string{path}}); err != nil {
		t.Fatal(err)
	}
}

package main

import (
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseSchema(t *testing.T) {
	s, err := parseSchema("ID:int, L:string, V:float, U:string")
	if err != nil {
		t.Fatal(err)
	}
	if got := s.String(); got != "ID:int, L:string, V:float, U:string" {
		t.Fatalf("schema = %q", got)
	}
	for _, spec := range []string{"", "ID", "ID:bogus", "ID:int,ID:int", "bad.name:int"} {
		if _, err := parseSchema(spec); err == nil {
			t.Errorf("parseSchema(%q) succeeded, want error", spec)
		}
	}
}

// TestRunSmoke boots the full server in-process, registers a query,
// ingests events, scrapes /metrics and shuts down with SIGTERM — the
// same smoke sequence the CI workflow runs against the built binary.
func TestRunSmoke(t *testing.T) {
	o := options{
		partition:    -1,
		addr:         "127.0.0.1:0",
		schemaSpec:   "ID:int,L:string,V:float,U:string",
		drainTimeout: 10 * time.Second,
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, os.Stderr, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	post := func(path, body string) string {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s = %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	post("/queries", `{"id": "smoke", "query": "PATTERN PERMUTE(c, d) THEN (b) WHERE c.L = 'C' AND d.L = 'D' AND b.L = 'B' WITHIN 264h"}`)
	post("/events", `{"time": 1000, "attrs": {"ID": 1, "L": "C", "V": 1.5, "U": "mg"}}
{"time": 2000, "attrs": {"ID": 1, "L": "D", "V": 84, "U": "mgl"}}
{"time": 3000, "attrs": {"ID": 1, "L": "B", "V": 0, "U": "WHO-Tox"}}`)

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"ses_server_events_ingested_total 3", `ses_server_query_events_total{query="smoke"} 3`} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("/metrics lacks %q:\n%s", series, metrics)
		}
	}

	// SIGTERM drains and exits cleanly; the drain flushes the window
	// so the registered query emits its match before shutdown.
	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// TestRunSmokeWAL boots sesd with the WAL flags, ingests history with
// no query registered, then registers one with ?backfill=true and
// checks it catches up on the retained log before going live.
func TestRunSmokeWAL(t *testing.T) {
	o := options{
		partition:     -1,
		addr:          "127.0.0.1:0",
		schemaSpec:    "ID:int,L:string,V:float,U:string",
		drainTimeout:  10 * time.Second,
		checkpointDir: t.TempDir(),
		walDir:        t.TempDir(),
		fsync:         "never",
	}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- run(o, os.Stderr, ready) }()

	var base string
	select {
	case addr := <-ready:
		base = "http://" + addr
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not become ready")
	}

	post := func(path, body string) string {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s = %d: %s", path, resp.StatusCode, b)
		}
		return string(b)
	}
	// History first, nobody listening: only the WAL sees these.
	post("/events", `{"time": 1000, "attrs": {"ID": 1, "L": "C", "V": 1.5, "U": "mg"}}
{"time": 2000, "attrs": {"ID": 1, "L": "D", "V": 84, "U": "mgl"}}`)
	body := post("/queries?backfill=true", `{"id": "smoke", "query": "PATTERN PERMUTE(c, d) THEN (b) WHERE c.L = 'C' AND d.L = 'D' AND b.L = 'B' WITHIN 264h"}`)
	if !strings.Contains(body, `"backfill":true`) {
		t.Fatalf("backfill registration response: %s", body)
	}
	post("/events", `{"time": 3000, "attrs": {"ID": 1, "L": "B", "V": 0, "U": "WHO-Tox"}}`)

	// The query must see all three events: two replayed, one live.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get(base + "/queries/smoke")
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if strings.Contains(string(b), `"events":3`) && !strings.Contains(string(b), `"catching_up":true`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("backfill query never caught up: %s", b)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, series := range []string{"ses_wal_appends_total 3", "ses_server_replay_events_total 2", "ses_server_backfills_total 1"} {
		if !strings.Contains(string(metrics), series) {
			t.Errorf("/metrics lacks %q", series)
		}
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("server did not exit after SIGTERM")
	}
}

// Command sesd is the SES pattern matching server: a long-running
// process that ingests one event stream over HTTP and evaluates every
// registered SES query against it concurrently.
//
// Usage:
//
//	sesd -schema 'ID:int,L:string,V:float,U:string'
//	sesd -schema 'ID:int,L:string' -addr :9000 -checkpoint-dir /var/lib/sesd
//
// Flags:
//
//	-addr ADDR             HTTP listen address (default :8134)
//	-schema SPEC           event schema as name:type,... (required;
//	                       types: string, int, float)
//	-mailbox N             per-query mailbox capacity (default 1024)
//	-matchlog N            retained matches per query (default 4096)
//	-checkpoint-dir DIR    persist checkpoints and the query manifest
//	-checkpoint-every N    events between checkpoints (default 256)
//	-drain-timeout D       max graceful-drain wait (default 30s)
//	-wal-dir DIR           append every admitted event to a durable
//	                       segmented log in DIR before fan-out
//	-fsync POLICY          WAL flush policy: always, interval or never
//	                       (default interval)
//	-fsync-interval D      flush period of the interval policy
//	                       (default 100ms)
//	-segment-bytes N       WAL segment rotation size (default 64 MiB)
//	-retain-bytes N        reclaim oldest WAL segments beyond this
//	                       total size (default: keep everything)
//	-retain-age D          reclaim WAL segments older than D
//	                       (default: keep everything)
//
// The HTTP API (see docs/OPERATIONS.md for the full reference):
//
//	POST   /events               ingest events, one JSON object per line
//	POST   /queries              register a query
//	GET    /queries              list queries
//	GET    /queries/{id}         one query's state
//	DELETE /queries/{id}         remove a query
//	GET    /queries/{id}/matches stream matches (NDJSON or SSE, ?follow=1)
//	GET    /healthz              liveness
//	GET    /metrics              Prometheus metrics
//	GET    /debug/pprof/         profiling
//
// On SIGTERM or SIGINT the server drains gracefully: ingest is
// refused, every query's pipeline consumes its backlog and flushes its
// window, supervised queries write a final checkpoint, and the query
// set is persisted. A sesd restarted with the same -checkpoint-dir
// re-registers the persisted queries and resumes their checkpoints.
//
// With -wal-dir the server additionally owns its ingest durability: a
// crashed or killed sesd restarted over the same directories rebuilds
// every query by replaying its own log from the per-query checkpoint
// watermark (or registration offset) — the upstream source does not
// re-send anything — and POST /queries?backfill=true bootstraps a new
// query from the retained history.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
)

// options collects the command line configuration of one run.
type options struct {
	addr            string
	schemaSpec      string
	mailbox         int
	matchLog        int
	checkpointDir   string
	checkpointEvery int
	drainTimeout    time.Duration
	walDir          string
	fsync           string
	fsyncInterval   time.Duration
	segmentBytes    int64
	retainBytes     int64
	retainAge       time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8134", "HTTP listen address")
	flag.StringVar(&o.schemaSpec, "schema", "", "event schema as name:type,... (types: string, int, float)")
	flag.IntVar(&o.mailbox, "mailbox", 0, "per-query mailbox capacity (default 1024)")
	flag.IntVar(&o.matchLog, "matchlog", 0, "retained matches per query (default 4096)")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "directory for checkpoints and the query manifest")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "events between checkpoints (default 256)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "maximum graceful-drain wait on shutdown")
	flag.StringVar(&o.walDir, "wal-dir", "", "directory for the durable ingest WAL (enables crash replay and backfill)")
	flag.StringVar(&o.fsync, "fsync", "", "WAL flush policy: always, interval or never (default interval)")
	flag.DurationVar(&o.fsyncInterval, "fsync-interval", 0, "flush period of the interval policy (default 100ms)")
	flag.Int64Var(&o.segmentBytes, "segment-bytes", 0, "WAL segment rotation size in bytes (default 64 MiB)")
	flag.Int64Var(&o.retainBytes, "retain-bytes", 0, "reclaim oldest WAL segments beyond this total size (default: keep everything)")
	flag.DurationVar(&o.retainAge, "retain-age", 0, "reclaim WAL segments older than this (default: keep everything)")
	flag.Parse()
	if err := run(o, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sesd:", err)
		os.Exit(1)
	}
}

// parseSchema parses "name:type,name:type,..." into a schema.
func parseSchema(spec string) (*ses.Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-schema is required (e.g. 'ID:int,L:string,V:float,U:string')")
	}
	var fields []ses.Field
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema field %q: want name:type", part)
		}
		var t ses.Type
		switch strings.ToLower(strings.TrimSpace(typ)) {
		case "string", "str", "text":
			t = ses.TypeString
		case "int", "integer", "int64":
			t = ses.TypeInt
		case "float", "float64", "double", "real":
			t = ses.TypeFloat
		default:
			return nil, fmt.Errorf("schema field %q: unknown type %q", name, typ)
		}
		fields = append(fields, ses.Field{Name: strings.TrimSpace(name), Type: t})
	}
	return ses.NewSchema(fields...)
}

// run starts the server and blocks until a termination signal drains
// it. When ready is non-nil it receives the resolved listen address
// once the server accepts connections (used by tests).
func run(o options, logw *os.File, ready chan<- string) error {
	schema, err := parseSchema(o.schemaSpec)
	if err != nil {
		return err
	}
	reg := ses.NewMetricsRegistry()
	srv, err := ses.NewServer(ses.ServerConfig{
		Schema:           schema,
		Registry:         reg,
		Mailbox:          o.mailbox,
		MatchLog:         o.matchLog,
		CheckpointDir:    o.checkpointDir,
		CheckpointEvery:  o.checkpointEvery,
		DrainTimeout:     o.drainTimeout,
		WALDir:           o.walDir,
		WALFsync:         o.fsync,
		WALFsyncInterval: o.fsyncInterval,
		WALSegmentBytes:  o.segmentBytes,
		WALRetainBytes:   o.retainBytes,
		WALRetainAge:     o.retainAge,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "sesd: serving schema (%s) on http://%s/\n", schema, ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(logw, "sesd: draining (up to %s)\n", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout+5*time.Second)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutdownErr := hs.Shutdown(drainCtx)
	if drainErr != nil {
		return drainErr
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Fprintln(logw, "sesd: drained cleanly")
	return nil
}

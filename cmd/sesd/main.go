// Command sesd is the SES pattern matching server: a long-running
// process that ingests one event stream over HTTP and evaluates every
// registered SES query against it concurrently.
//
// Usage:
//
//	sesd -schema 'ID:int,L:string,V:float,U:string'
//	sesd -schema 'ID:int,L:string' -addr :9000 -checkpoint-dir /var/lib/sesd
//
// Flags:
//
//	-addr ADDR             HTTP listen address (default :8134)
//	-schema SPEC           event schema as name:type,... (required;
//	                       types: string, int, float)
//	-mailbox N             per-query mailbox capacity in event blocks (default 16)
//	-matchlog N            retained matches per query (default 4096)
//	-no-routing            deliver every event to every query,
//	                       bypassing the routing index (triage aid)
//	-checkpoint-dir DIR    persist checkpoints and the query manifest
//	-checkpoint-every N    events between checkpoints (default 256)
//	-drain-timeout D       max graceful-drain wait (default 30s)
//	-wal-dir DIR           append every admitted event to a durable
//	                       segmented log in DIR before fan-out
//	-fsync POLICY          WAL flush policy: always, interval or never
//	                       (default interval)
//	-fsync-interval D      flush period of the interval policy
//	                       (default 100ms)
//	-segment-bytes N       WAL segment rotation size (default 64 MiB)
//	-retain-bytes N        reclaim oldest WAL segments beyond this
//	                       total size (default: keep everything)
//	-retain-age D          reclaim WAL segments older than D
//	                       (default: keep everything)
//	-unshipped-cap N       reclaim unshipped WAL segments (held for a
//	                       follower) beyond this many bytes, loudly
//	                       (default: hold them indefinitely)
//	-follow URL            start as a warm-standby follower of the
//	                       leader at URL: read-only, replicating its
//	                       WAL and query set (requires -wal-dir)
//	-promote-after D       with -follow: promote to leader after the
//	                       leader has been unreachable for D
//	                       (default: manual promotion only)
//	-peer URL              check the peer's fencing epoch at startup
//	                       and refuse writes if it is higher (set it
//	                       on a restarted ex-leader to its standby)
//	-cluster FILE          membership file of the partitioned cluster
//	                       this node serves in (see docs/OPERATIONS.md
//	                       §8); requires -partition
//	-partition N           with -cluster: the partition id this node
//	                       serves. The node adopts the partition's
//	                       keyspace slice: ingest switches to
//	                       router-assigned explicit sequence numbers,
//	                       events hashing outside the slice are
//	                       refused with 421, and duplicate deliveries
//	                       are dropped idempotently.
//
// The HTTP API (see docs/OPERATIONS.md for the full reference):
//
//	POST   /events               ingest events, one JSON object per line
//	POST   /queries              register a query
//	GET    /queries              list queries
//	GET    /queries/{id}         one query's state
//	DELETE /queries/{id}         remove a query
//	GET    /queries/{id}/matches stream matches (NDJSON or SSE, ?follow=1)
//	GET    /queries/{id}/stats   aggregate results of an AGGREGATE query
//	                             (JSON snapshot, or SSE deltas with ?follow=1)
//	POST   /promote              promote a follower to leader
//	GET    /healthz              liveness (role + fencing epoch)
//	GET    /metrics              Prometheus metrics
//	GET    /debug/pprof/         profiling
//	GET    /replica/manifest     replication manifest (with -wal-dir)
//	GET    /replica/wal          CRC-framed WAL records (with -wal-dir)
//
// On SIGTERM or SIGINT the server drains gracefully: ingest is
// refused, every query's pipeline consumes its backlog and flushes its
// window, supervised queries write a final checkpoint, and the query
// set is persisted. A sesd restarted with the same -checkpoint-dir
// re-registers the persisted queries and resumes their checkpoints.
//
// With -wal-dir the server additionally owns its ingest durability: a
// crashed or killed sesd restarted over the same directories rebuilds
// every query by replaying its own log from the per-query checkpoint
// watermark (or registration offset) — the upstream source does not
// re-send anything — and POST /queries?backfill=true bootstraps a new
// query from the retained history.
//
// With -follow the process runs as a warm standby: it mirrors the
// leader's WAL and query set, serves read-only match streams at a
// small replication lag, and takes over on POST /promote (or
// automatically after -promote-after without leader contact). The
// promotion bumps a fencing epoch persisted in the WAL manifest; a
// revived old leader started with -peer pointing at the standby
// observes the higher epoch and refuses writes instead of forking the
// log. See docs/OPERATIONS.md for the replication runbook.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro"
	"repro/internal/cluster"
	"repro/internal/replica"
)

// options collects the command line configuration of one run.
type options struct {
	addr            string
	schemaSpec      string
	mailbox         int
	matchLog        int
	noRouting       bool
	noCompile       bool
	checkpointDir   string
	checkpointEvery int
	drainTimeout    time.Duration
	walDir          string
	fsync           string
	fsyncInterval   time.Duration
	segmentBytes    int64
	retainBytes     int64
	retainAge       time.Duration
	unshippedCap    int64
	follow          string
	promoteAfter    time.Duration
	peer            string
	clusterFile     string
	partition       int
}

func main() {
	var o options
	flag.StringVar(&o.addr, "addr", ":8134", "HTTP listen address")
	flag.StringVar(&o.schemaSpec, "schema", "", "event schema as name:type,... (types: string, int, float)")
	flag.IntVar(&o.mailbox, "mailbox", 0, "per-query mailbox capacity in event blocks (default 16)")
	flag.IntVar(&o.matchLog, "matchlog", 0, "retained matches per query (default 4096)")
	flag.BoolVar(&o.noRouting, "no-routing", false, "deliver every event to every query, bypassing the routing index (triage aid)")
	flag.BoolVar(&o.noCompile, "no-compile", false, "evaluate transition conditions through the generic interpreter instead of compiled predicates (triage aid)")
	flag.StringVar(&o.checkpointDir, "checkpoint-dir", "", "directory for checkpoints and the query manifest")
	flag.IntVar(&o.checkpointEvery, "checkpoint-every", 0, "events between checkpoints (default 256)")
	flag.DurationVar(&o.drainTimeout, "drain-timeout", 30*time.Second, "maximum graceful-drain wait on shutdown")
	flag.StringVar(&o.walDir, "wal-dir", "", "directory for the durable ingest WAL (enables crash replay and backfill)")
	flag.StringVar(&o.fsync, "fsync", "", "WAL flush policy: always, interval or never (default interval)")
	flag.DurationVar(&o.fsyncInterval, "fsync-interval", 0, "flush period of the interval policy (default 100ms)")
	flag.Int64Var(&o.segmentBytes, "segment-bytes", 0, "WAL segment rotation size in bytes (default 64 MiB)")
	flag.Int64Var(&o.retainBytes, "retain-bytes", 0, "reclaim oldest WAL segments beyond this total size (default: keep everything)")
	flag.DurationVar(&o.retainAge, "retain-age", 0, "reclaim WAL segments older than this (default: keep everything)")
	flag.Int64Var(&o.unshippedCap, "unshipped-cap", 0, "reclaim unshipped WAL segments beyond this many bytes (default: hold them for the follower indefinitely)")
	flag.StringVar(&o.follow, "follow", "", "run as a read-only follower replicating the leader at this URL (requires -wal-dir)")
	flag.DurationVar(&o.promoteAfter, "promote-after", 0, "with -follow: promote to leader after this long without leader contact (default: manual only)")
	flag.StringVar(&o.peer, "peer", "", "check this peer's fencing epoch at startup and refuse writes if it is higher")
	flag.StringVar(&o.clusterFile, "cluster", "", "membership file of the partitioned cluster this node serves in (requires -partition)")
	flag.IntVar(&o.partition, "partition", -1, "with -cluster: the partition id this node serves")
	flag.Parse()
	if err := run(o, os.Stderr, nil); err != nil {
		fmt.Fprintln(os.Stderr, "sesd:", err)
		os.Exit(1)
	}
}

// parseSchema parses "name:type,name:type,..." into a schema.
func parseSchema(spec string) (*ses.Schema, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("-schema is required (e.g. 'ID:int,L:string,V:float,U:string')")
	}
	var fields []ses.Field
	for _, part := range strings.Split(spec, ",") {
		name, typ, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("schema field %q: want name:type", part)
		}
		var t ses.Type
		switch strings.ToLower(strings.TrimSpace(typ)) {
		case "string", "str", "text":
			t = ses.TypeString
		case "int", "integer", "int64":
			t = ses.TypeInt
		case "float", "float64", "double", "real":
			t = ses.TypeFloat
		default:
			return nil, fmt.Errorf("schema field %q: unknown type %q", name, typ)
		}
		fields = append(fields, ses.Field{Name: strings.TrimSpace(name), Type: t})
	}
	return ses.NewSchema(fields...)
}

// run starts the server and blocks until a termination signal drains
// it. When ready is non-nil it receives the resolved listen address
// once the server accepts connections (used by tests).
func run(o options, logw *os.File, ready chan<- string) error {
	schema, err := parseSchema(o.schemaSpec)
	if err != nil {
		return err
	}
	if o.follow != "" && o.walDir == "" {
		return fmt.Errorf("-follow requires -wal-dir (the follower appends the leader's records to its own WAL)")
	}
	if o.promoteAfter > 0 && o.follow == "" {
		return fmt.Errorf("-promote-after only makes sense with -follow")
	}
	var own *cluster.Ownership
	if o.clusterFile != "" {
		if o.partition < 0 {
			return fmt.Errorf("-cluster requires -partition (which slice this node serves)")
		}
		m, err := cluster.LoadMembership(o.clusterFile)
		if err != nil {
			return err
		}
		p := m.Partition(o.partition)
		if p == nil {
			return fmt.Errorf("partition %d is not declared in %s", o.partition, o.clusterFile)
		}
		if _, ok := schema.Index(m.Key); !ok {
			return fmt.Errorf("partition key %q is not a schema attribute (schema: %s)", m.Key, schema)
		}
		own = p.Ownership(m.Key, m.Slots)
	} else if o.partition >= 0 {
		return fmt.Errorf("-partition only makes sense with -cluster")
	}
	reg := ses.NewMetricsRegistry()
	srv, err := ses.NewServer(ses.ServerConfig{
		Schema:               schema,
		Ownership:            own,
		Registry:             reg,
		Mailbox:              o.mailbox,
		MatchLog:             o.matchLog,
		DisableRouting:       o.noRouting,
		NoCompile:            o.noCompile,
		CheckpointDir:        o.checkpointDir,
		CheckpointEvery:      o.checkpointEvery,
		DrainTimeout:         o.drainTimeout,
		WALDir:               o.walDir,
		WALFsync:             o.fsync,
		WALFsyncInterval:     o.fsyncInterval,
		WALSegmentBytes:      o.segmentBytes,
		WALRetainBytes:       o.retainBytes,
		WALRetainAge:         o.retainAge,
		WALUnshippedCapBytes: o.unshippedCap,
	})
	if err != nil {
		return err
	}
	if o.follow != "" {
		srv.SetReadOnly()
	}
	if o.peer != "" {
		// Fencing check: a restarted ex-leader must observe a promoted
		// standby's higher epoch before accepting a single write.
		checkCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		epoch, ok := replica.CheckPeer(checkCtx, nil, o.peer)
		cancel()
		switch {
		case !ok:
			fmt.Fprintf(logw, "sesd: peer %s unreachable; proceeding with local epoch %d\n", o.peer, srv.Epoch())
		case epoch > srv.Epoch():
			srv.Fence(epoch)
			fmt.Fprintf(logw, "sesd: fenced: peer %s holds epoch %d > local %d; refusing writes\n", o.peer, epoch, srv.Epoch())
		default:
			fmt.Fprintf(logw, "sesd: peer %s at epoch %d, local %d; write path open\n", o.peer, epoch, srv.Epoch())
		}
	}

	mux := http.NewServeMux()
	if srv.WAL() != nil {
		shipper, err := replica.NewShipper(srv, reg)
		if err != nil {
			srv.Close()
			return err
		}
		mux.Handle("/replica/", shipper)
	}
	mux.Handle("/", srv.Handler())

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	fmt.Fprintf(logw, "sesd: serving schema (%s) on http://%s/ as %s\n", schema, ln.Addr(), srv.Role())
	if ready != nil {
		ready <- ln.Addr().String()
	}

	pullerCtx, stopPuller := context.WithCancel(context.Background())
	defer stopPuller()
	var pullerDone chan struct{}
	if o.follow != "" {
		p, err := replica.NewPuller(srv, replica.Options{
			Leader:           o.follow,
			AutoPromoteAfter: o.promoteAfter,
			Registry:         reg,
			Logf: func(format string, args ...interface{}) {
				fmt.Fprintf(logw, "sesd: "+format+"\n", args...)
			},
		})
		if err != nil {
			srv.Close()
			return err
		}
		pullerDone = make(chan struct{})
		go func() {
			defer close(pullerDone)
			switch err := p.Run(pullerCtx); {
			case err == nil:
				fmt.Fprintf(logw, "sesd: replication ended; now %s at epoch %d\n", srv.Role(), srv.Epoch())
			case errors.Is(err, context.Canceled):
			default:
				// Terminal replication failure (divergence, reclaimed
				// gap): keep serving the read-only state and leave the
				// decision — re-seed or promote — to the operator.
				fmt.Fprintf(logw, "sesd: replication stopped: %v\n", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	select {
	case err := <-serveErr:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	stop()

	stopPuller()
	if pullerDone != nil {
		<-pullerDone
	}
	fmt.Fprintf(logw, "sesd: draining (up to %s)\n", o.drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout+5*time.Second)
	defer cancel()
	drainErr := srv.Drain(drainCtx)
	shutdownErr := hs.Shutdown(drainCtx)
	if drainErr != nil {
		return drainErr
	}
	if shutdownErr != nil {
		return shutdownErr
	}
	fmt.Fprintln(logw, "sesd: drained cleanly")
	return nil
}

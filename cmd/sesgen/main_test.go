package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/store"
)

func TestRunGeneratesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d1.csv")
	if err := run("tiny", 0, 0, -1, 0, 1, false, out, true); err != nil {
		t.Fatal(err)
	}
	rel, err := store.LoadFile(out, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Errorf("empty relation generated")
	}
	if got := rel.Schema().String(); got != "ID:int, L:string, V:float, U:string" {
		t.Errorf("schema = %q", got)
	}
}

func TestRunOverridesAndDup(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.csv")
	dup := filepath.Join(dir, "dup.csv")
	if err := run("tiny", 2, 1, 0.5, 99, 1, false, base, false); err != nil {
		t.Fatal(err)
	}
	if err := run("tiny", 2, 1, 0.5, 99, 3, false, dup, false); err != nil {
		t.Fatal(err)
	}
	b, err := store.LoadFile(base, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.LoadFile(dup, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3*b.Len() {
		t.Errorf("dup=3 produced %d events, want %d", d.Len(), 3*b.Len())
	}
}

// TestRunGeneratesNDJSON checks the -ndjson output decodes back to the
// same events the CSV writer produces, in sesd's ingest line format.
func TestRunGeneratesNDJSON(t *testing.T) {
	dir := t.TempDir()
	csvOut := filepath.Join(dir, "d1.csv")
	ndOut := filepath.Join(dir, "d1.ndjson")
	if err := run("tiny", 2, 1, 0.5, 7, 1, false, csvOut, false); err != nil {
		t.Fatal(err)
	}
	if err := run("tiny", 2, 1, 0.5, 7, 1, true, ndOut, false); err != nil {
		t.Fatal(err)
	}
	rel, err := store.LoadFile(csvOut, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ndOut)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != rel.Len() {
		t.Fatalf("ndjson has %d lines, relation has %d events", len(lines), rel.Len())
	}
	schema := rel.Schema()
	for i, line := range lines {
		var obj struct {
			Time  *int64                     `json:"time"`
			Attrs map[string]json.RawMessage `json:"attrs"`
		}
		dec := json.NewDecoder(strings.NewReader(line))
		dec.DisallowUnknownFields() // exactly the shape sesd's /events accepts
		if err := dec.Decode(&obj); err != nil {
			t.Fatalf("line %d: %v\n%s", i+1, err, line)
		}
		e := rel.Event(i)
		if obj.Time == nil || *obj.Time != int64(e.Time) {
			t.Fatalf("line %d: time = %v, want %d", i+1, obj.Time, e.Time)
		}
		if len(obj.Attrs) != schema.NumFields() {
			t.Fatalf("line %d: %d attrs, want %d", i+1, len(obj.Attrs), schema.NumFields())
		}
		for j := 0; j < schema.NumFields(); j++ {
			f := schema.Field(j)
			raw, ok := obj.Attrs[f.Name]
			if !ok {
				t.Fatalf("line %d: missing attribute %q", i+1, f.Name)
			}
			var got string
			switch f.Type {
			case event.TypeString:
				var s string
				if err := json.Unmarshal(raw, &s); err != nil {
					t.Fatalf("line %d, %s: %v", i+1, f.Name, err)
				}
				got = s
			default:
				got = strings.TrimSpace(string(raw))
			}
			if want := e.Attrs[j].Encode(); got != want {
				t.Errorf("line %d, %s = %q, want %q", i+1, f.Name, got, want)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() error
	}{
		{"bad profile", "unknown profile", func() error { return run("huge", 0, 0, -1, 0, 1, false, "", false) }},
		{"bad dup", "-dup", func() error { return run("tiny", 0, 0, -1, 0, 0, false, "", false) }},
		{"bad dir", "", func() error { return run("tiny", 0, 0, -1, 0, 1, false, "/nonexistent/dir/x.csv", false) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatalf("expected error")
			}
			if c.err != "" && !strings.Contains(err.Error(), c.err) {
				t.Errorf("error = %v, want containing %q", err, c.err)
			}
		})
	}
}

package main

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/store"
)

func TestRunGeneratesCSV(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "d1.csv")
	if err := run("tiny", 0, 0, -1, 0, 1, out, true); err != nil {
		t.Fatal(err)
	}
	rel, err := store.LoadFile(out, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rel.Len() == 0 {
		t.Errorf("empty relation generated")
	}
	if got := rel.Schema().String(); got != "ID:int, L:string, V:float, U:string" {
		t.Errorf("schema = %q", got)
	}
}

func TestRunOverridesAndDup(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "base.csv")
	dup := filepath.Join(dir, "dup.csv")
	if err := run("tiny", 2, 1, 0.5, 99, 1, base, false); err != nil {
		t.Fatal(err)
	}
	if err := run("tiny", 2, 1, 0.5, 99, 3, dup, false); err != nil {
		t.Fatal(err)
	}
	b, err := store.LoadFile(base, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	d, err := store.LoadFile(dup, store.ReadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3*b.Len() {
		t.Errorf("dup=3 produced %d events, want %d", d.Len(), 3*b.Len())
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() error
	}{
		{"bad profile", "unknown profile", func() error { return run("huge", 0, 0, -1, 0, 1, "", false) }},
		{"bad dup", "-dup", func() error { return run("tiny", 0, 0, -1, 0, 0, "", false) }},
		{"bad dir", "", func() error { return run("tiny", 0, 0, -1, 0, 1, "/nonexistent/dir/x.csv", false) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil {
				t.Fatalf("expected error")
			}
			if c.err != "" && !strings.Contains(err.Error(), c.err) {
				t.Errorf("error = %v, want containing %q", err, c.err)
			}
		})
	}
}

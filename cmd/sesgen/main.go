// Command sesgen generates synthetic chemotherapy event relations (the
// substitute for the paper's proprietary hospital dataset, see
// DESIGN.md) and writes them as typed CSV files readable by sesmatch,
// or as NDJSON ingest batches for the sesd server.
//
// Usage:
//
//	sesgen [-profile tiny|small|paper] [-patients N] [-cycles N]
//	       [-noise F] [-seed N] [-dup K] [-ndjson] [-o FILE] [-stats]
//
// With -dup K every event is duplicated K times, producing the
// datasets D2..D5 of the evaluation. With -ndjson the output is one
// {"time": T, "attrs": {...}} object per line — the body format of
// sesd's POST /events — so a dataset streams straight into a server:
//
//	sesgen -profile small -ndjson | curl --data-binary @- http://localhost:8134/events
//
// Without -o the output goes to stdout.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chemo"
	"repro/internal/store"
)

func main() {
	var (
		profile  = flag.String("profile", "small", "base profile: tiny, small or paper")
		patients = flag.Int("patients", 0, "override number of patients")
		cycles   = flag.Int("cycles", 0, "override cycles per patient")
		noise    = flag.Float64("noise", -1, "override noise events per patient per day")
		seed     = flag.Int64("seed", 0, "override the PRNG seed")
		dup      = flag.Int("dup", 1, "duplicate every event K times (datasets D2..D5)")
		ndjson   = flag.Bool("ndjson", false, "write NDJSON ingest lines for sesd's POST /events instead of CSV")
		out      = flag.String("o", "", "output file (default stdout)")
		stats    = flag.Bool("stats", false, "print dataset statistics to stderr")
	)
	flag.Parse()
	if err := run(*profile, *patients, *cycles, *noise, *seed, *dup, *ndjson, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "sesgen:", err)
		os.Exit(1)
	}
}

func run(profile string, patients, cycles int, noise float64, seed int64, dup int, ndjson bool, out string, stats bool) error {
	var cfg chemo.Config
	switch profile {
	case "tiny":
		cfg = chemo.Tiny()
	case "small":
		cfg = chemo.Small()
	case "paper":
		cfg = chemo.Paper()
	default:
		return fmt.Errorf("unknown profile %q (use tiny, small or paper)", profile)
	}
	if patients > 0 {
		cfg.Patients = patients
	}
	if cycles > 0 {
		cfg.CyclesPerPatient = cycles
	}
	if noise >= 0 {
		cfg.NoisePerDay = noise
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if dup < 1 {
		return fmt.Errorf("-dup must be at least 1, got %d", dup)
	}

	rel, err := chemo.Generate(cfg)
	if err != nil {
		return err
	}
	if dup > 1 {
		rel = rel.Duplicate(dup)
	}
	if stats {
		fmt.Fprintln(os.Stderr, chemo.Describe(rel))
	}
	switch {
	case ndjson && out == "":
		return store.WriteNDJSON(os.Stdout, rel)
	case ndjson:
		return store.SaveNDJSONFile(out, rel)
	case out == "":
		return store.Write(os.Stdout, rel)
	default:
		return store.SaveFile(out, rel)
	}
}

package main

import (
	"strings"
	"testing"
)

func TestRunExperimentsTiny(t *testing.T) {
	// Exercise every experiment path on the tiny profile; output goes
	// to stdout, the test asserts error-freeness of the full pipeline.
	for _, exp := range []string{"1", "2", "3", "ablation"} {
		if err := run(exp, "tiny", 2, 3, 0, 0); err != nil {
			t.Errorf("exp %s: %v", exp, err)
		}
	}
}

func TestRunSeedOverride(t *testing.T) {
	if err := run("2", "tiny", 1, 2, 777, 0); err != nil {
		t.Errorf("seed override: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	cases := []struct {
		name string
		frag string
		call func() error
	}{
		{"bad profile", "unknown profile", func() error { return run("all", "giant", 5, 6, 0, 0) }},
		{"bad datasets", "-datasets", func() error { return run("all", "tiny", 9, 6, 0, 0) }},
		{"bad maxsize", "-maxsize", func() error { return run("all", "tiny", 5, 1, 0, 0) }},
		{"bad exp", "unknown experiment", func() error { return run("9", "tiny", 1, 3, 0, 0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.call()
			if err == nil || !strings.Contains(err.Error(), c.frag) {
				t.Errorf("error = %v, want containing %q", err, c.frag)
			}
		})
	}
}

func TestRunInstanceCap(t *testing.T) {
	// A tiny cap must abort cleanly instead of exhausting memory.
	err := run("2", "tiny", 1, 3, 0, 5)
	if err == nil || !strings.Contains(err.Error(), "cap") {
		t.Errorf("expected instance-cap error, got %v", err)
	}
}

// Command sesbench reproduces the evaluation of Cadonna, Gamper,
// Böhlen: "Sequenced Event Set Pattern Matching" (EDBT 2011,
// Section 5) on synthetic chemotherapy data and prints the series
// behind every table and figure:
//
//	Experiment 1  →  Figure 11 and Table 1
//	Experiment 2  →  Figure 12
//	Experiment 3  →  Figure 13
//	Ablations     →  A1 (filter breakdown), A2 (selection strategy)
//
// Usage:
//
//	sesbench [-exp all|1|2|3|ablation] [-profile tiny|small|paper]
//	         [-datasets N] [-maxsize N] [-seed N] [-json FILE]
//	         [-baseline FILE] [-tolerance F] [-debug-addr ADDR]
//	         [-cpuprofile FILE] [-memprofile FILE]
//
// With -json FILE the command instead measures a fixed benchmark
// suite with testing.Benchmark and writes a machine-readable baseline
// artifact (ns/op, B/op, allocs/op, maxΩ, match counts plus the
// environment and the regeneration command) to FILE — the file
// committed as BENCH_baseline.json at the repository root.
//
// With -baseline FILE the suite is measured and compared against the
// committed artifact: timing and allocation regressions beyond
// -tolerance (default 0.25 = +25%) or any drift in the correctness
// fingerprints (match count, maxΩ) fail the run with a non-zero exit —
// the CI bench gate. -json may be combined to also write the fresh
// measurement.
//
// -debug-addr starts the observability HTTP server (Prometheus
// /metrics, expvar, pprof) on the given address for profiling the
// benchmark process itself. -cpuprofile and -memprofile instead write
// runtime/pprof profiles covering the whole run to files (the CPU
// profile spans the run; the heap profile is written at exit after a
// final GC), for offline `go tool pprof` analysis of a batch run.
//
// The default "small" profile finishes in well under a minute; the
// "paper" profile approximates the original D1 (window size W ≈ 1322)
// and takes correspondingly longer, especially Experiment 3 without
// filtering (the paper's own runs reach ~1000 s there).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/bench"
	"repro/internal/chemo"
	"repro/internal/engine"
	"repro/internal/obs"
)

func main() {
	var (
		exp        = flag.String("exp", "all", "experiment to run: all, 1, 2, 3 or ablation")
		profile    = flag.String("profile", "small", "dataset profile: tiny, small or paper")
		datasets   = flag.Int("datasets", 5, "number of datasets D1..Dk (k in 1..5)")
		maxSize    = flag.Int("maxsize", 6, "largest |V1| for experiment 1 (2..6)")
		seed       = flag.Int64("seed", 0, "override the profile's PRNG seed (0 keeps it)")
		cap        = flag.Int("cap", 0, "abort any run whose simultaneous instances exceed N (0 = unlimited; prevents OOM on paper-scale D4/D5)")
		jsonFile   = flag.String("json", "", "write a benchmark baseline artifact to this file instead of running the experiments")
		baseline   = flag.String("baseline", "", "measure the artifact suite and gate it against this committed baseline file")
		tolerance  = flag.Float64("tolerance", 0.25, "allowed fractional regression in ns/op and allocs/op for -baseline (0.25 = +25%)")
		debugAddr  = flag.String("debug-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:6060)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile covering the whole run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile (after a final GC) to this file at exit")
	)
	flag.Parse()
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "sesbench:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "sesbench:", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "sesbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle retained heap before the snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "sesbench:", err)
			}
		}()
	}
	if *debugAddr != "" {
		srv, err := obs.ServeDebug(*debugAddr, obs.NewRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, "sesbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("debug endpoints on http://%s/ (/metrics, /debug/pprof)\n", srv.Addr)
	}
	var err error
	switch {
	case *baseline != "":
		err = runGate(*baseline, *jsonFile, *profile, *datasets, *seed, *tolerance)
	case *jsonFile != "":
		err = runJSON(*jsonFile, *profile, *datasets, *seed)
	default:
		err = run(*exp, *profile, *datasets, *maxSize, *seed, *cap)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sesbench:", err)
		os.Exit(1)
	}
}

// runGate measures the artifact suite and fails if it regresses beyond
// tolerance against the committed baseline at basePath.
func runGate(basePath, jsonFile, profile string, datasets int, seed int64, tolerance float64) error {
	base, err := bench.LoadArtifact(basePath)
	if err != nil {
		return err
	}
	if base.Profile != "" && base.Profile != profile {
		fmt.Printf("note: baseline profile %q, measuring with %q — comparison may be meaningless\n", base.Profile, profile)
	}
	cfg, err := profileConfig(profile)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if datasets < 1 || datasets > 5 {
		return fmt.Errorf("-datasets must be in 1..5, got %d", datasets)
	}
	fmt.Printf("measuring %d-entry gate run (profile %s, seed %d, %d datasets) ...\n",
		len(base.Entries), profile, cfg.Seed, datasets)
	art, err := bench.BuildArtifact(cfg, profile, datasets)
	if err != nil {
		return err
	}
	if jsonFile != "" {
		b, err := art.MarshalIndent()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonFile, b, 0o644); err != nil {
			return err
		}
	}
	problems := bench.Compare(base, art, tolerance)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Fprintln(os.Stderr, "  regression:", p)
		}
		return fmt.Errorf("bench gate failed: %d violation(s) against %s", len(problems), basePath)
	}
	fmt.Printf("bench gate passed: %d entries within +%.0f%% of %s\n",
		len(art.Entries), 100*tolerance, basePath)
	return nil
}

// runJSON measures the artifact benchmark suite and writes the JSON
// baseline to path.
func runJSON(path, profile string, datasets int, seed int64) error {
	cfg, err := profileConfig(profile)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if datasets < 1 || datasets > 5 {
		return fmt.Errorf("-datasets must be in 1..5, got %d", datasets)
	}
	fmt.Printf("measuring baseline (profile %s, seed %d, %d datasets) ...\n", profile, cfg.Seed, datasets)
	art, err := bench.BuildArtifact(cfg, profile, datasets)
	if err != nil {
		return err
	}
	b, err := art.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d entries to %s\n", len(art.Entries), path)
	return nil
}

// profileConfig maps a -profile name to its dataset configuration.
func profileConfig(profile string) (chemo.Config, error) {
	switch profile {
	case "tiny":
		return chemo.Tiny(), nil
	case "small":
		return chemo.Small(), nil
	case "paper":
		return chemo.Paper(), nil
	}
	return chemo.Config{}, fmt.Errorf("unknown profile %q (use tiny, small or paper)", profile)
}

func run(exp, profile string, datasets, maxSize int, seed int64, cap int) error {
	cfg, err := profileConfig(profile)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if datasets < 1 || datasets > 5 {
		return fmt.Errorf("-datasets must be in 1..5, got %d", datasets)
	}
	if maxSize < 2 || maxSize > 6 {
		return fmt.Errorf("-maxsize must be in 2..6, got %d", maxSize)
	}

	fmt.Printf("generating datasets (profile %s, seed %d) ...\n", profile, cfg.Seed)
	ds, err := bench.MakeDatasets(cfg, datasets)
	if err != nil {
		return err
	}
	for _, d := range ds {
		fmt.Printf("  %s: %s\n", d.Name, chemo.Describe(d.Rel))
	}
	fmt.Println()

	var opts []engine.Option
	if cap > 0 {
		opts = append(opts, engine.WithMaxInstances(cap))
	}
	runAll := exp == "all"
	if runAll || exp == "1" {
		var sizes []int
		for s := 2; s <= maxSize; s++ {
			sizes = append(sizes, s)
		}
		rows, err := bench.RunExp1(ds[0], sizes, opts...)
		if err != nil {
			return err
		}
		fmt.Println(bench.Exp1Table(ds[0], rows))
		fmt.Println(bench.Exp1Figure(rows))
		fmt.Println(bench.Table1(rows))
	}
	if runAll || exp == "2" {
		rows, err := bench.RunExp2(ds, opts...)
		if err != nil {
			return err
		}
		fmt.Println(bench.Exp2Table(rows))
		fmt.Println(bench.Exp2Figure(rows))
	}
	if runAll || exp == "3" {
		rows, err := bench.RunExp3(ds, opts...)
		if err != nil {
			return err
		}
		fmt.Println(bench.Exp3Table(rows))
		fmt.Println(bench.Exp3Figure(rows))
	}
	if runAll || exp == "ablation" {
		frows, err := bench.RunAblationFilter(ds[:1])
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationFilterTable(frows))
		const cap = 2_000_000
		srows, capped, err := bench.RunAblationStrategy(ds[:1], cap)
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationStrategyTable(srows, capped, cap))
		irows, err := bench.RunAblationIndex(ds)
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationIndexTable(irows))
	}
	if !runAll && exp != "1" && exp != "2" && exp != "3" && exp != "ablation" {
		return fmt.Errorf("unknown experiment %q (use all, 1, 2, 3 or ablation)", exp)
	}
	return nil
}

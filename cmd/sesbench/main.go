// Command sesbench reproduces the evaluation of Cadonna, Gamper,
// Böhlen: "Sequenced Event Set Pattern Matching" (EDBT 2011,
// Section 5) on synthetic chemotherapy data and prints the series
// behind every table and figure:
//
//	Experiment 1  →  Figure 11 and Table 1
//	Experiment 2  →  Figure 12
//	Experiment 3  →  Figure 13
//	Ablations     →  A1 (filter breakdown), A2 (selection strategy)
//
// Usage:
//
//	sesbench [-exp all|1|2|3|ablation] [-profile tiny|small|paper]
//	         [-datasets N] [-maxsize N] [-seed N] [-json FILE]
//
// With -json FILE the command instead measures a fixed benchmark
// suite with testing.Benchmark and writes a machine-readable baseline
// artifact (ns/op, B/op, allocs/op, maxΩ, match counts plus the
// environment and the regeneration command) to FILE — the file
// committed as BENCH_baseline.json at the repository root.
//
// The default "small" profile finishes in well under a minute; the
// "paper" profile approximates the original D1 (window size W ≈ 1322)
// and takes correspondingly longer, especially Experiment 3 without
// filtering (the paper's own runs reach ~1000 s there).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/chemo"
	"repro/internal/engine"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment to run: all, 1, 2, 3 or ablation")
		profile  = flag.String("profile", "small", "dataset profile: tiny, small or paper")
		datasets = flag.Int("datasets", 5, "number of datasets D1..Dk (k in 1..5)")
		maxSize  = flag.Int("maxsize", 6, "largest |V1| for experiment 1 (2..6)")
		seed     = flag.Int64("seed", 0, "override the profile's PRNG seed (0 keeps it)")
		cap      = flag.Int("cap", 0, "abort any run whose simultaneous instances exceed N (0 = unlimited; prevents OOM on paper-scale D4/D5)")
		jsonFile = flag.String("json", "", "write a benchmark baseline artifact to this file instead of running the experiments")
	)
	flag.Parse()
	var err error
	if *jsonFile != "" {
		err = runJSON(*jsonFile, *profile, *datasets, *seed)
	} else {
		err = run(*exp, *profile, *datasets, *maxSize, *seed, *cap)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "sesbench:", err)
		os.Exit(1)
	}
}

// runJSON measures the artifact benchmark suite and writes the JSON
// baseline to path.
func runJSON(path, profile string, datasets int, seed int64) error {
	cfg, err := profileConfig(profile)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if datasets < 1 || datasets > 5 {
		return fmt.Errorf("-datasets must be in 1..5, got %d", datasets)
	}
	fmt.Printf("measuring baseline (profile %s, seed %d, %d datasets) ...\n", profile, cfg.Seed, datasets)
	art, err := bench.BuildArtifact(cfg, profile, datasets)
	if err != nil {
		return err
	}
	b, err := art.MarshalIndent()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d entries to %s\n", len(art.Entries), path)
	return nil
}

// profileConfig maps a -profile name to its dataset configuration.
func profileConfig(profile string) (chemo.Config, error) {
	switch profile {
	case "tiny":
		return chemo.Tiny(), nil
	case "small":
		return chemo.Small(), nil
	case "paper":
		return chemo.Paper(), nil
	}
	return chemo.Config{}, fmt.Errorf("unknown profile %q (use tiny, small or paper)", profile)
}

func run(exp, profile string, datasets, maxSize int, seed int64, cap int) error {
	cfg, err := profileConfig(profile)
	if err != nil {
		return err
	}
	if seed != 0 {
		cfg.Seed = seed
	}
	if datasets < 1 || datasets > 5 {
		return fmt.Errorf("-datasets must be in 1..5, got %d", datasets)
	}
	if maxSize < 2 || maxSize > 6 {
		return fmt.Errorf("-maxsize must be in 2..6, got %d", maxSize)
	}

	fmt.Printf("generating datasets (profile %s, seed %d) ...\n", profile, cfg.Seed)
	ds, err := bench.MakeDatasets(cfg, datasets)
	if err != nil {
		return err
	}
	for _, d := range ds {
		fmt.Printf("  %s: %s\n", d.Name, chemo.Describe(d.Rel))
	}
	fmt.Println()

	var opts []engine.Option
	if cap > 0 {
		opts = append(opts, engine.WithMaxInstances(cap))
	}
	runAll := exp == "all"
	if runAll || exp == "1" {
		var sizes []int
		for s := 2; s <= maxSize; s++ {
			sizes = append(sizes, s)
		}
		rows, err := bench.RunExp1(ds[0], sizes, opts...)
		if err != nil {
			return err
		}
		fmt.Println(bench.Exp1Table(ds[0], rows))
		fmt.Println(bench.Exp1Figure(rows))
		fmt.Println(bench.Table1(rows))
	}
	if runAll || exp == "2" {
		rows, err := bench.RunExp2(ds, opts...)
		if err != nil {
			return err
		}
		fmt.Println(bench.Exp2Table(rows))
		fmt.Println(bench.Exp2Figure(rows))
	}
	if runAll || exp == "3" {
		rows, err := bench.RunExp3(ds, opts...)
		if err != nil {
			return err
		}
		fmt.Println(bench.Exp3Table(rows))
		fmt.Println(bench.Exp3Figure(rows))
	}
	if runAll || exp == "ablation" {
		frows, err := bench.RunAblationFilter(ds[:1])
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationFilterTable(frows))
		const cap = 2_000_000
		srows, capped, err := bench.RunAblationStrategy(ds[:1], cap)
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationStrategyTable(srows, capped, cap))
		irows, err := bench.RunAblationIndex(ds)
		if err != nil {
			return err
		}
		fmt.Println(bench.AblationIndexTable(irows))
	}
	if !runAll && exp != "1" && exp != "2" && exp != "3" && exp != "ablation" {
		return fmt.Errorf("unknown experiment %q (use all, 1, 2, 3 or ablation)", exp)
	}
	return nil
}

// Clickstream analysis: conversion-funnel mining with optional steps —
// the click stream use case from the paper's introduction, exercising
// the optional-variable extension (v?, v*) of this library.
//
// A converting session consists of one or more product views and an
// add-to-cart in any order (shoppers bounce between product pages and
// the cart), optionally applying a coupon somewhere in that phase,
// followed by the checkout page and then a completed payment — all
// within 30 minutes:
//
//	PATTERN PERMUTE(view+, cart, coupon?) THEN (checkout) THEN (pay)
//	WITHIN 30m
//
// The report segments conversions by coupon usage — the greedy
// optional binding guarantees the coupon is attributed whenever one
// was used in the window.
//
// Run with:
//
//	go run ./examples/clickstream
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	schema := ses.MustSchema(
		ses.Field{Name: "Session", Type: ses.TypeString},
		ses.Field{Name: "Action", Type: ses.TypeString},
	)

	q, err := ses.Compile(`
		PATTERN PERMUTE(view+, cart, coupon?) THEN (checkout) THEN (pay)
		WHERE view.Action = 'VIEW' AND cart.Action = 'ADD_CART'
		  AND coupon.Action = 'COUPON' AND checkout.Action = 'CHECKOUT'
		  AND pay.Action = 'PAY'
		WITHIN 30m`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("funnel query compiled into %d variant automata (%d states total)\n\n",
		q.Variants(), q.States())

	rel := buildClicks(schema)
	parts, err := rel.Partition("Session")
	if err != nil {
		log.Fatal(err)
	}

	var withCoupon, withoutCoupon, abandoned int
	for _, part := range parts {
		matches, _, err := q.Match(part, ses.WithFilter(true))
		if err != nil {
			log.Fatal(err)
		}
		if len(matches) == 0 {
			abandoned++
			continue
		}
		m := matches[0]
		used := false
		for _, b := range m.Bindings {
			if b.Var == "coupon" {
				used = true
			}
		}
		if used {
			withCoupon++
		} else {
			withoutCoupon++
		}
	}

	total := len(parts)
	fmt.Printf("sessions analysed: %d (%d click events)\n", total, rel.Len())
	fmt.Printf("  converted with coupon:    %d\n", withCoupon)
	fmt.Printf("  converted without coupon: %d\n", withoutCoupon)
	fmt.Printf("  abandoned:                %d\n", abandoned)
	fmt.Printf("conversion rate: %.0f%%\n", 100*float64(withCoupon+withoutCoupon)/float64(total))
}

// buildClicks synthesises 30 sessions: roughly half convert (some with
// a coupon), the rest abandon before checkout or pay too late.
func buildClicks(schema *ses.Schema) *ses.Relation {
	rng := rand.New(rand.NewSource(2024))
	rel := ses.NewRelation(schema)
	t := ses.Time(0)
	click := func(session, action string) {
		t += ses.Time(5 + rng.Intn(90)) // global interleaved clock
		rel.MustAppend(t, ses.String(session), ses.String(action))
	}
	for s := 1; s <= 30; s++ {
		id := fmt.Sprintf("S%02d", s)
		views := 1 + rng.Intn(4)
		kind := rng.Intn(4) // 0: coupon convert, 1: plain convert, 2-3: abandon
		// Browsing phase: views and the cart action interleave freely.
		cartAt := rng.Intn(views + 1)
		for v := 0; v <= views; v++ {
			if v == cartAt {
				click(id, "ADD_CART")
			}
			if v < views {
				click(id, "VIEW")
			}
		}
		switch kind {
		case 0:
			click(id, "COUPON")
			click(id, "CHECKOUT")
			click(id, "PAY")
		case 1:
			click(id, "CHECKOUT")
			click(id, "PAY")
		case 2:
			// Abandons at checkout.
			click(id, "CHECKOUT")
		default:
			// Pays, but hours later — outside the 30 minute window.
			click(id, "CHECKOUT")
			t += 4 * 3600
			click(id, "PAY")
		}
	}
	rel.SortByTime()
	return rel
}

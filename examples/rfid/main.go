// RFID tracking: validate warehouse outbound handling with a
// three-stage SES pattern — the RFID-based tracking and monitoring use
// case from the paper's introduction.
//
// Every outbound pallet must pass three stations in the packing area
// (dock scan, weighing, labelling) in ANY order, then two gate
// operations (truck load, seal) in any order, and finally a departure
// scan — all within 24 hours:
//
//	PATTERN PERMUTE(scan, weigh, label) THEN PERMUTE(load, seal)
//	        THEN (depart) WITHIN 24h
//
// The three PERMUTE stages make this a genuinely sequenced event SET
// pattern: inside a stage the reader order is irrelevant (readers race
// each other), but a pallet must never reach the gate before packing
// completed, nor depart before being sealed.
//
// Run with:
//
//	go run ./examples/rfid
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

const pallets = 5

func main() {
	schema := ses.MustSchema(
		ses.Field{Name: "Tag", Type: ses.TypeString}, // pallet EPC tag
		ses.Field{Name: "Reader", Type: ses.TypeString},
		ses.Field{Name: "RSSI", Type: ses.TypeFloat},
	)

	q, err := ses.Compile(`
		PATTERN PERMUTE(scan, weigh, label) THEN PERMUTE(load, seal) THEN (depart)
		WHERE scan.Reader = 'DOCK' AND weigh.Reader = 'SCALE'
		  AND label.Reader = 'LABEL' AND load.Reader = 'TRUCK'
		  AND seal.Reader = 'SEAL' AND depart.Reader = 'GATE'
		  AND scan.Tag = weigh.Tag AND scan.Tag = label.Tag
		  AND label.Tag = load.Tag AND load.Tag = seal.Tag
		  AND seal.Tag = depart.Tag
		WITHIN 24h`, schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled automaton: %d states, %d transitions\n", q.States(), q.Transitions())
	fmt.Printf("complexity: %s\n\n", ses.Analyze(q.Pattern()).Bound)

	rel := buildReads(schema)
	parts, err := rel.Partition("Tag")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("outbound audit over %d RFID reads, %d pallets:\n", rel.Len(), len(parts))
	for p := 1; p <= pallets; p++ {
		tag := fmt.Sprintf("EPC-%03d", p)
		part := parts[ses.String(tag)]
		if part == nil {
			fmt.Printf("  %s: no reads\n", tag)
			continue
		}
		matches, _, err := q.Match(part, ses.WithFilter(true))
		if err != nil {
			log.Fatal(err)
		}
		if len(matches) == 0 {
			fmt.Printf("  %s: VIOLATION — stations missing or out of stage order\n", tag)
			continue
		}
		m := matches[0]
		fmt.Printf("  %s: compliant, handled in %dh%02dm  %s\n",
			tag, (m.Last-m.First)/3600, (m.Last-m.First)%3600/60, m)
	}
}

// buildReads synthesises RFID reads. Pallets 1-3 are handled
// correctly with shuffled within-stage orders; pallet 4 reaches the
// truck before labelling (stage-order violation); pallet 5 departs
// without a seal read (missing station).
func buildReads(schema *ses.Schema) *ses.Relation {
	rng := rand.New(rand.NewSource(99))
	rel := ses.NewRelation(schema)
	base := ses.Time(500_000)
	read := func(t ses.Time, tag, reader string) {
		rel.MustAppend(t, ses.String(tag), ses.String(reader),
			ses.Float(-40-rng.Float64()*20))
	}

	for p := 1; p <= pallets; p++ {
		tag := fmt.Sprintf("EPC-%03d", p)
		t := base + ses.Time(p*1800)
		step := func() ses.Time { t += ses.Time(300 + rng.Intn(1200)); return t }

		packing := []string{"DOCK", "SCALE", "LABEL"}
		rng.Shuffle(len(packing), func(i, j int) { packing[i], packing[j] = packing[j], packing[i] })
		gate := []string{"TRUCK", "SEAL"}
		rng.Shuffle(len(gate), func(i, j int) { gate[i], gate[j] = gate[j], gate[i] })

		switch p {
		case 4:
			// Violation: truck load happens between packing stations.
			read(step(), tag, packing[0])
			read(step(), tag, "TRUCK")
			read(step(), tag, packing[1])
			read(step(), tag, packing[2])
			read(step(), tag, "SEAL")
			read(step(), tag, "GATE")
		case 5:
			// Violation: seal read missing entirely.
			for _, r := range packing {
				read(step(), tag, r)
			}
			read(step(), tag, "TRUCK")
			read(step(), tag, "GATE")
		default:
			for _, r := range packing {
				read(step(), tag, r)
			}
			for _, r := range gate {
				read(step(), tag, r)
			}
			read(step(), tag, "GATE")
		}
		// Stray reads from a handheld inventory scanner.
		for i := 0; i < 4; i++ {
			read(step(), tag, "HANDHELD")
		}
	}
	rel.SortByTime()
	return rel
}

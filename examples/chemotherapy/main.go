// Chemotherapy protocol audit: generate a synthetic ward history and
// verify that every CHOP-like treatment cycle followed the protocol —
// the motivating scenario of the paper (Cadonna, Gamper, Böhlen,
// EDBT 2011).
//
// The protocol prescribes Ciclofosfamide, Doxorubicina and a course of
// Prednisone — administered in any order, which is exactly what the
// PERMUTE event set expresses — followed by a blood count within
// eleven days. The audit counts complete protocol instances per
// patient and flags patients with missing follow-ups.
//
// Run with:
//
//	go run ./examples/chemotherapy
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"repro"
)

func main() {
	schema := ses.MustSchema(
		ses.Field{Name: "ID", Type: ses.TypeInt},
		ses.Field{Name: "L", Type: ses.TypeString},
		ses.Field{Name: "V", Type: ses.TypeFloat},
	)

	rel := buildWardHistory(schema)
	fmt.Printf("ward history: %d events\n\n", rel.Len())

	q, err := ses.Compile(`
		PATTERN PERMUTE(c, p+, d) THEN (b)
		WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
		  AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
		WITHIN 264h`, schema)
	if err != nil {
		log.Fatal(err)
	}

	// Query Q1 reads "FOR EACH PATIENT, find ...": evaluate the pattern
	// per patient partition. (Running it on the interleaved relation is
	// possible but subtly different under skip-till-next-match: an
	// instance that binds p+ first has no ID join available yet and is
	// forced to consume the next P event even when it belongs to
	// another patient, killing the per-patient match. Partitioning by
	// the entity attribute — what the paper's "for each patient"
	// implies — avoids that.)
	parts, err := rel.Partition("ID")
	if err != nil {
		log.Fatal(err)
	}

	// Aggregate complete protocol instances per patient. Overlapping
	// suffix substitutions share their blood count event with a longer
	// match; counting distinct blood counts yields the cycles.
	cycles := map[int64]map[int]bool{}
	var metrics ses.Metrics
	for key, part := range parts {
		matches, m, err := q.Match(part, ses.WithFilter(true))
		if err != nil {
			log.Fatal(err)
		}
		metrics.Add(m)
		pid := key.Int64()
		for _, match := range matches {
			for _, b := range match.Bindings {
				if b.Var == "b" {
					if cycles[pid] == nil {
						cycles[pid] = map[int]bool{}
					}
					cycles[pid][b.Events[0].Seq] = true
				}
			}
		}
	}

	fmt.Println("protocol audit (complete cycles = medication permutation + follow-up blood count):")
	for pid := int64(1); pid <= patients; pid++ {
		complete := len(cycles[pid])
		status := "OK"
		if complete < cyclesPerPatient {
			status = fmt.Sprintf("MISSING %d follow-up(s)", cyclesPerPatient-complete)
		}
		fmt.Printf("  patient %d: %d/%d cycles complete — %s\n",
			pid, complete, cyclesPerPatient, status)
	}
	fmt.Printf("\nengine metrics: %s\n", metrics)
}

const (
	patients         = 6
	cyclesPerPatient = 3
)

// buildWardHistory synthesises a small ward history: each patient
// receives cyclesPerPatient treatment cycles, 21 days apart, with the
// medication order shuffled per cycle (the real-world variation that
// motivates PERMUTE). Patient 4 skips the blood count of its last
// cycle, and patient 6 gets it too late — both must fail the audit.
func buildWardHistory(schema *ses.Schema) *ses.Relation {
	rng := rand.New(rand.NewSource(42))
	rel := ses.NewRelation(schema)
	base := time.Date(2010, time.March, 1, 0, 0, 0, 0, time.UTC).Unix()
	at := func(day int, hour, min int) ses.Time {
		return ses.Time(base + int64(day)*86400 + int64(hour)*3600 + int64(min)*60)
	}

	for pid := int64(1); pid <= patients; pid++ {
		start := rng.Intn(30)
		for cycle := 0; cycle < cyclesPerPatient; cycle++ {
			d0 := start + cycle*21
			// The administration order varies between cycles: shuffle
			// the three medication slots across the first two days.
			meds := []struct {
				l string
				v float64
			}{{"C", 1500}, {"D", 80}, {"P", 100}}
			rng.Shuffle(len(meds), func(i, j int) { meds[i], meds[j] = meds[j], meds[i] })
			for slot, m := range meds {
				rel.MustAppend(at(d0+slot/2, 9+slot, rng.Intn(60)),
					ses.Int(pid), ses.String(m.l), ses.Float(m.v))
			}
			// Additional Prednisone doses on days 2-4.
			for day := 2; day <= 4; day++ {
				rel.MustAppend(at(d0+day, 10, rng.Intn(60)),
					ses.Int(pid), ses.String("P"), ses.Float(100))
			}
			// Follow-up blood count on day 9 — with two protocol
			// violations: patient 4 skips the last one, patient 6 gets
			// the last one only after 15 days (outside the 264 h window).
			last := cycle == cyclesPerPatient-1
			switch {
			case pid == 4 && last:
				// no blood count at all
			case pid == 6 && last:
				rel.MustAppend(at(d0+15, 9, 0), ses.Int(pid), ses.String("B"), ses.Float(1))
			default:
				rel.MustAppend(at(d0+9, 9, rng.Intn(60)), ses.Int(pid), ses.String("B"), ses.Float(float64(rng.Intn(3))))
			}
			// Unrelated lab work (filtered out by the engine).
			for i := 0; i < 12; i++ {
				rel.MustAppend(at(d0+rng.Intn(12), 7+rng.Intn(10), rng.Intn(60)),
					ses.Int(pid), ses.String("LAB"), ses.Float(rng.Float64()*10))
			}
		}
	}
	rel.SortByTime()
	return rel
}

// Finance: detect multi-leg options strategies in a live order stream
// using channel-based evaluation — one of the financial-services use
// cases that motivate event pattern matching in the paper's
// introduction.
//
// A "collar" strategy consists of three legs that desks execute in
// any order (often split across venues): buying the underlying stock
// (possibly in several partial fills), buying a protective put and
// selling a covered call. A risk report must follow once the position
// is assembled. The legs' arbitrary execution order is exactly a
// PERMUTE event set; the report is the sequenced second set:
//
//	PATTERN PERMUTE(stock+, put, call) THEN (report) WITHIN 15m
//
// joined on the account. Events are fed through a channel and matches
// are consumed as they surface (the detector reports a strategy as
// soon as its instance window closes).
//
// Run with:
//
//	go run ./examples/finance
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	schema := ses.MustSchema(
		ses.Field{Name: "Acct", Type: ses.TypeString},
		ses.Field{Name: "Kind", Type: ses.TypeString}, // BUY_STK, BUY_PUT, SELL_CALL, RISK_RPT, ...
		ses.Field{Name: "Qty", Type: ses.TypeInt},
	)

	q, err := ses.Compile(`
		PATTERN PERMUTE(stock+, put, call) THEN (report)
		WHERE stock.Kind = 'BUY_STK' AND put.Kind = 'BUY_PUT'
		  AND call.Kind = 'SELL_CALL' AND report.Kind = 'RISK_RPT'
		  AND stock.Acct = put.Acct AND put.Acct = call.Acct
		  AND call.Acct = report.Acct
		WITHIN 15m`, schema)
	if err != nil {
		log.Fatal(err)
	}

	// The detector runs per account (the pattern joins on Acct, and
	// partitioned evaluation keeps the p+ leg from being force-fed
	// another account's fills under skip-till-next-match).
	accounts := []string{"ACC-7", "ACC-9"}
	runners := map[string]*ses.Runner{}
	inputs := map[string]chan ses.Event{}
	outputs := map[string]<-chan ses.Match{}
	ctx := context.Background()
	for _, acct := range accounts {
		// Emit-on-accept: the desk wants the alert the moment the risk
		// report lands, not when the detection window closes.
		r := q.Runner(ses.WithFilter(true), ses.WithEmitOnAccept(true))
		in := make(chan ses.Event, 16)
		runners[acct] = r
		inputs[acct] = in
		outputs[acct] = r.Stream(ctx, in)
	}

	// Simulated tape: ACC-7 assembles a collar with three partial
	// stock fills (order: put, fills, call, fill); ACC-9 buys a put and
	// sells a call but never finishes the stock leg, so it must not
	// match. Unrelated flow is interleaved.
	rng := rand.New(rand.NewSource(7))
	t := ses.Time(1_000_000)
	tape := []struct {
		acct, kind string
		qty        int64
	}{
		{"ACC-7", "BUY_PUT", 10},
		{"ACC-9", "BUY_PUT", 5},
		{"ACC-7", "BUY_STK", 300},
		{"ACC-7", "QUOTE", 0},
		{"ACC-7", "BUY_STK", 400},
		{"ACC-9", "SELL_CALL", 5},
		{"ACC-7", "SELL_CALL", 10},
		{"ACC-7", "BUY_STK", 300},
		{"ACC-9", "QUOTE", 0},
		{"ACC-7", "RISK_RPT", 0},
		{"ACC-9", "RISK_RPT", 0}, // no stock leg: incomplete, no match
	}
	go func() {
		for _, rec := range tape {
			t += ses.Time(10 + rng.Intn(30)) // seconds between prints
			inputs[rec.acct] <- ses.Event{Time: t, Attrs: []ses.Value{
				ses.String(rec.acct), ses.String(rec.kind), ses.Int(rec.qty),
			}}
		}
		for _, acct := range accounts {
			close(inputs[acct])
		}
	}()

	fmt.Println("collar detector running ...")
	for _, acct := range accounts {
		n := 0
		for m := range outputs[acct] {
			n++
			var fills int64
			for _, b := range m.Bindings {
				if b.Var == "stock" {
					for _, e := range b.Events {
						fills += e.Attrs[2].Int64()
					}
				}
			}
			fmt.Printf("  %s: collar assembled in %ds — %d stock fill(s) totalling %d shares, legs %s\n",
				acct, m.Last-m.First, len(m.Bindings[0].Events), fills, m)
		}
		if err := runners[acct].Err(); err != nil {
			log.Fatal(err)
		}
		if n == 0 {
			fmt.Printf("  %s: no complete collar (as expected for the incomplete leg set)\n", acct)
		}
	}
}

// Quickstart: match the paper's running example — Query Q1 over the
// 14-event chemotherapy relation of Figure 1 (Cadonna, Gamper, Böhlen:
// "Sequenced Event Set Pattern Matching", EDBT 2011).
//
// The query asks: for each patient, find one administration of
// Ciclofosfamide (C), one or more of Prednisone (P) and one of
// Doxorubicina (D) in any order, followed by a blood count (B), all
// within eleven days.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro"
)

func main() {
	// The event schema of the paper's Figure 1: patient ID, event type
	// L, value V, unit U. The occurrence time T is implicit.
	schema := ses.MustSchema(
		ses.Field{Name: "ID", Type: ses.TypeInt},
		ses.Field{Name: "L", Type: ses.TypeString},
		ses.Field{Name: "V", Type: ses.TypeFloat},
		ses.Field{Name: "U", Type: ses.TypeString},
	)

	rel := ses.NewRelation(schema)
	at := func(day, hour int) ses.Time {
		return ses.Time(time.Date(2010, time.July, day, hour, 0, 0, 0, time.UTC).Unix())
	}
	type row struct {
		day, hour int
		id        int64
		l         string
		v         float64
		u         string
	}
	for _, e := range []row{ // e1..e14 of Figure 1
		{3, 9, 1, "C", 1672.5, "mg"}, {3, 10, 1, "B", 0, "WHO-Tox"},
		{3, 11, 1, "D", 84, "mgl"}, {4, 9, 1, "P", 111.5, "mg"},
		{5, 9, 2, "B", 0, "WHO-Tox"}, {5, 10, 2, "P", 88, "mg"},
		{5, 11, 2, "D", 84, "mgl"}, {6, 9, 2, "C", 1320, "mg"},
		{6, 10, 1, "P", 111.5, "mg"}, {6, 11, 2, "P", 88, "mg"},
		{7, 9, 2, "P", 88, "mg"}, {12, 9, 1, "B", 1, "WHO-Tox"},
		{13, 9, 2, "B", 1, "WHO-Tox"}, {14, 9, 2, "B", 0, "WHO-Tox"},
	} {
		rel.MustAppend(at(e.day, e.hour),
			ses.Int(e.id), ses.String(e.l), ses.Float(e.v), ses.String(e.u))
	}

	// Query Q1 in the textual pattern language. PERMUTE(c, p+, d)
	// matches the three medications in any order (p+ binds one or more
	// Prednisone events); THEN (b) requires the blood count strictly
	// after all of them.
	q, err := ses.Compile(`
		PATTERN PERMUTE(c, p+, d) THEN (b)
		WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
		  AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
		WITHIN 264h`, schema)
	if err != nil {
		log.Fatal(err)
	}

	matches, metrics, err := q.Match(rel, ses.WithFilter(true))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pattern:\n%s\n\n", q.Pattern())
	fmt.Printf("complexity: %s\n\n", ses.Analyze(q.Pattern()).Bound)
	fmt.Printf("%d matching substitutions:\n", len(matches))
	for _, m := range matches {
		fmt.Printf("  %s  (patient %d, %d events)\n",
			m, m.Events()[0].Attrs[0].Int64(), m.EventCount())
	}
	fmt.Printf("\nmetrics: %s\n", metrics)
}

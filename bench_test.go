// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5) as testing.B benchmarks, one family per
// artifact:
//
//	BenchmarkExp1Fig11_*   → Figure 11 (SES vs brute force instances)
//	BenchmarkExp1Table1    → Table 1   (instance ratio vs (|V1|-1)!)
//	BenchmarkExp2Fig12_*   → Figure 12 (instances vs window size W)
//	BenchmarkExp3Fig13_*   → Figure 13 (runtime with/without filter)
//	BenchmarkAblation*     → the two ablations added by this repo
//
// The benchmarks run on the "small" synthetic profile (W ≈ 650) so the
// whole suite stays laptop-sized; cmd/sesbench regenerates the full
// tables, including the paper-scale profile (W ≈ 1322), in one run.
// Custom metrics report the measured parameter of each experiment:
// maxΩ (maximal simultaneous automaton instances) and iterations over
// Ω. Wall-clock per op is the measured parameter of Experiment 3.
package ses_test

import (
	"fmt"
	"sync"
	"testing"

	"repro"
	"repro/internal/automaton"
	"repro/internal/bench"
	"repro/internal/bruteforce"
	"repro/internal/chemo"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/paperdata"
	"repro/internal/pattern"
)

// datasets are generated once per process; D1..D3 of the small
// profile keep even the heaviest benchmark iterations in the low
// seconds.
var (
	dsOnce sync.Once
	ds     []bench.Dataset
)

func datasets(b *testing.B, k int) []bench.Dataset {
	b.Helper()
	dsOnce.Do(func() {
		var err error
		ds, err = bench.MakeDatasets(chemo.Small(), 3)
		if err != nil {
			b.Fatal(err)
		}
	})
	if k > len(ds) {
		b.Fatalf("only %d datasets prepared", len(ds))
	}
	return ds[:k]
}

func compileFor(b *testing.B, p *pattern.Pattern, rel *event.Relation) *automaton.Automaton {
	b.Helper()
	a, err := automaton.Compile(p, rel.Schema())
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// runSESBench measures one SES run per iteration and reports maxΩ.
func runSESBench(b *testing.B, p *pattern.Pattern, rel *event.Relation, opts ...engine.Option) {
	b.Helper()
	a := compileFor(b, p, rel)
	var maxOmega int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := engine.Run(a, rel, opts...)
		if err != nil {
			b.Fatal(err)
		}
		maxOmega = m.MaxSimultaneousInstances
	}
	b.ReportMetric(float64(maxOmega), "maxΩ")
}

// runBFBench measures one brute-force run per iteration.
func runBFBench(b *testing.B, p *pattern.Pattern, rel *event.Relation) {
	b.Helper()
	bf, err := bruteforce.Compile(p, rel.Schema())
	if err != nil {
		b.Fatal(err)
	}
	var maxOmega int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, m, err := bf.Run(rel, engine.WithFilter(true))
		if err != nil {
			b.Fatal(err)
		}
		maxOmega = m.MaxSimultaneousInstances
	}
	b.ReportMetric(float64(maxOmega), "maxΩ")
	b.ReportMetric(float64(len(bf.Automata)), "automata")
}

// ---------------------------------------------------------------------------
// Experiment 1 — Figure 11 and Table 1.

func BenchmarkExp1Fig11_SES_P1(b *testing.B) {
	d := datasets(b, 1)[0]
	for _, size := range []int{2, 3, 4, 5, 6} {
		p, err := bench.Exclusive(size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			runSESBench(b, p, d.Rel, engine.WithFilter(true))
		})
	}
}

func BenchmarkExp1Fig11_BF_P1(b *testing.B) {
	d := datasets(b, 1)[0]
	for _, size := range []int{2, 3, 4, 5, 6} {
		p, err := bench.Exclusive(size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			runBFBench(b, p, d.Rel)
		})
	}
}

func BenchmarkExp1Fig11_SES_P2(b *testing.B) {
	d := datasets(b, 1)[0]
	for _, size := range []int{2, 3, 4, 5, 6} {
		p, err := bench.Overlapping(size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			runSESBench(b, p, d.Rel, engine.WithFilter(true))
		})
	}
}

func BenchmarkExp1Fig11_BF_P2(b *testing.B) {
	d := datasets(b, 1)[0]
	for _, size := range []int{2, 3, 4, 5, 6} {
		p, err := bench.Overlapping(size)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(sizeName(size), func(b *testing.B) {
			runBFBench(b, p, d.Rel)
		})
	}
}

// BenchmarkExp1Table1 regenerates Table 1's ratio column in one go and
// reports it as metrics (ratio vs the (|V1|-1)! reference).
func BenchmarkExp1Table1(b *testing.B) {
	d := datasets(b, 1)[0]
	var rows []bench.Exp1Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunExp1(d, []int{2, 3, 4, 5, 6})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, r := range rows {
		b.ReportMetric(r.RatioP1, "ratio_v"+sizeName(r.Size))
	}
}

func sizeName(size int) string { return string(rune('0' + size)) }

// ---------------------------------------------------------------------------
// Experiment 2 — Figure 12.

func BenchmarkExp2Fig12_P3(b *testing.B) {
	for _, d := range datasets(b, 3) {
		b.Run(d.Name, func(b *testing.B) {
			b.ReportMetric(float64(d.W), "W")
			runSESBench(b, bench.P3(), d.Rel, engine.WithFilter(true))
		})
	}
}

func BenchmarkExp2Fig12_P4(b *testing.B) {
	for _, d := range datasets(b, 3) {
		b.Run(d.Name, func(b *testing.B) {
			b.ReportMetric(float64(d.W), "W")
			runSESBench(b, bench.P4(), d.Rel, engine.WithFilter(true))
		})
	}
}

// ---------------------------------------------------------------------------
// Experiment 3 — Figure 13. Wall-clock per op IS the figure's y-axis.

func benchExp3(b *testing.B, p *pattern.Pattern, filter bool) {
	for _, d := range datasets(b, 3) {
		b.Run(d.Name, func(b *testing.B) {
			a := compileFor(b, p, d.Rel)
			var iters int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, m, err := engine.Run(a, d.Rel, engine.WithFilter(filter))
				if err != nil {
					b.Fatal(err)
				}
				iters = m.InstanceIterations
			}
			b.ReportMetric(float64(iters), "Ωiter")
		})
	}
}

func BenchmarkExp3Fig13_P5_NoFilter(b *testing.B) { benchExp3(b, bench.P5(), false) }
func BenchmarkExp3Fig13_P5_Filter(b *testing.B)   { benchExp3(b, bench.P5(), true) }
func BenchmarkExp3Fig13_P6_NoFilter(b *testing.B) { benchExp3(b, bench.P6(), false) }
func BenchmarkExp3Fig13_P6_Filter(b *testing.B)   { benchExp3(b, bench.P6(), true) }

// ---------------------------------------------------------------------------
// Ablations.

// BenchmarkAblationFilterIterations reports how many iterations over Ω
// the Section 4.5 filter removes on P6/D1 (ablation A1).
func BenchmarkAblationFilterIterations(b *testing.B) {
	d := datasets(b, 1)[0]
	var rows []bench.FilterRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = bench.RunAblationFilter([]bench.Dataset{d})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(rows[0].IterNoFilter), "iter_nofilter")
	b.ReportMetric(float64(rows[0].IterFilter), "iter_filter")
}

// BenchmarkAblationStrategy compares the paper's skip-till-next-match
// with the skip-till-any-match extension on P4 (ablation A2).
func BenchmarkAblationStrategy(b *testing.B) {
	d := datasets(b, 1)[0]
	a := compileFor(b, bench.P4(), d.Rel)
	for _, s := range []engine.Strategy{engine.SkipTillNext, engine.SkipTillAny} {
		b.Run(s.String(), func(b *testing.B) {
			var maxOmega int64
			for i := 0; i < b.N; i++ {
				_, m, err := engine.Run(a, d.Rel,
					engine.WithFilter(true), engine.WithStrategy(s),
					engine.WithMaxInstances(5_000_000))
				if err != nil {
					b.Fatal(err)
				}
				maxOmega = m.MaxSimultaneousInstances
			}
			b.ReportMetric(float64(maxOmega), "maxΩ")
		})
	}
}

// BenchmarkAblationIndex compares plain evaluation, the Section 4.5
// filter and the instance-indexed evaluator (ablation A3) on P5/D1.
// The index subsumes the filter (a noise event touches zero buckets).
func BenchmarkAblationIndex(b *testing.B) {
	d := datasets(b, 1)[0]
	a := compileFor(b, bench.P5(), d.Rel)
	b.Run("plain", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(a, d.Rel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("filter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.Run(a, d.Rel, engine.WithFilter(true)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := engine.RunIndexed(a, d.Rel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the building blocks.

// BenchmarkCompileQ1 measures pattern-to-automaton compilation of the
// running example.
func BenchmarkCompileQ1(b *testing.B) {
	p := paperdata.QueryQ1()
	s := paperdata.Schema()
	for i := 0; i < b.N; i++ {
		if _, err := automaton.Compile(p, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParseQ1 measures query-text parsing.
func BenchmarkParseQ1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := ses.ParseQuery(paperdata.QueryQ1Text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkThroughputQ1 measures single-core event throughput of the
// running-example query on the small D1 with filtering, reported as
// events per operation via b.SetBytes-like accounting (ns/event is
// ns/op divided by the events metric).
func BenchmarkThroughputQ1(b *testing.B) {
	d := datasets(b, 1)[0]
	a := compileFor(b, paperdata.QueryQ1(), d.Rel)
	b.ReportMetric(float64(d.Rel.Len()), "events/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := engine.Run(a, d.Rel, engine.WithFilter(true)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Parallel partitioned execution.

// BenchmarkPartitionedParallel measures MatchPartitionedParallel on
// the running-example query over the small D1, partitioned by patient,
// across worker-pool sizes. The output is byte-identical at every
// size; on a multi-core machine the wall clock drops with workers
// until the partition count or core count binds.
func BenchmarkPartitionedParallel(b *testing.B) {
	d := datasets(b, 1)[0]
	q, err := ses.Compile(q1Text, d.Rel.Schema())
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := q.MatchPartitionedParallel(d.Rel, "ID", w, ses.WithFilter(true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShardedExecutor measures the streaming sharded executor end
// to end (dispatch, per-shard evaluation, watermark merge) on the same
// workload, across shard counts.
func BenchmarkShardedExecutor(b *testing.B) {
	d := datasets(b, 1)[0]
	a := compileFor(b, paperdata.QueryQ1(), d.Rel)
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.RunSharded(a, d.Rel, "ID", shards, engine.WithFilter(true)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Package ses is a library for sequenced event set (SES) pattern
// matching, a reproduction of Cadonna, Gamper, Böhlen: "Sequenced
// Event Set Pattern Matching" (EDBT 2011).
//
// A SES pattern matches a time-ordered sequence of events against a
// sequence of *sets* of event variables: events bound to the same set
// may occur in any permutation (the PERMUTE operator of the SQL row
// pattern matching change proposal), events bound to different sets
// must follow the set order strictly, and all matched events must fall
// within a time window τ. Variables are singletons (one event) or
// Kleene-plus group variables (one or more events), constrained by
// conditions on event attributes.
//
// # Quickstart
//
//	schema := ses.MustSchema(
//	    ses.Field{Name: "ID", Type: ses.TypeInt},
//	    ses.Field{Name: "L", Type: ses.TypeString},
//	)
//	rel := ses.NewRelation(schema)
//	rel.MustAppend(t0, ses.Int(1), ses.String("C"))
//	// ... more events, then:
//	q, err := ses.Compile(`
//	    PATTERN PERMUTE(c, p+, d) THEN (b)
//	    WHERE c.L = 'C' AND d.L = 'D' AND p.L = 'P' AND b.L = 'B'
//	      AND c.ID = p.ID AND c.ID = d.ID AND d.ID = b.ID
//	    WITHIN 264h`, schema)
//	matches, metrics, err := q.Match(rel)
//
// Patterns can equally be assembled programmatically with NewPattern,
// and event streams can be evaluated incrementally with Query.Stream
// or a Runner.
package ses

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"

	"repro/internal/automaton"
	"repro/internal/engine"
	"repro/internal/event"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/query"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/store"
)

// Re-exported event model types. See the respective internal packages
// for full documentation; the aliases make the public surface
// self-contained.
type (
	// Time is an instant in the discrete time domain (canonically
	// seconds).
	Time = event.Time
	// Duration is a time span in the same unit as Time.
	Duration = event.Duration
	// Value is a dynamically typed attribute value.
	Value = event.Value
	// Field declares one schema attribute.
	Field = event.Field
	// Type is the static type of a schema field.
	Type = event.Type
	// Schema describes the non-temporal attributes of a relation.
	Schema = event.Schema
	// Event is a tuple (A1..Al, T).
	Event = event.Event
	// Relation is a set of events ordered by occurrence time.
	Relation = event.Relation
)

// Field types.
const (
	TypeString = event.TypeString
	TypeInt    = event.TypeInt
	TypeFloat  = event.TypeFloat
)

// Duration units in the canonical seconds domain.
const (
	Second = event.Second
	Minute = event.Minute
	Hour   = event.Hour
	Day    = event.Day
	Week   = event.Week
)

// Value constructors.
var (
	// String constructs a string attribute value.
	String = event.String
	// Int constructs an integer attribute value.
	Int = event.Int
	// Float constructs a floating point attribute value.
	Float = event.Float
)

// NewSchema builds a schema from fields; names must be unique and free
// of the reserved characters '.', ',' and ':'.
func NewSchema(fields ...Field) (*Schema, error) { return event.NewSchema(fields...) }

// MustSchema is NewSchema that panics on error.
func MustSchema(fields ...Field) *Schema { return event.MustSchema(fields...) }

// NewRelation creates an empty relation over the schema.
func NewRelation(schema *Schema) *Relation { return event.NewRelation(schema) }

// Merge combines time-sorted relations over a common schema into one
// sorted relation (stable k-way merge).
func Merge(rels ...*Relation) (*Relation, error) { return event.Merge(rels...) }

// Reorderer absorbs bounded out-of-order arrival in event streams,
// releasing events in timestamp order within a lateness slack. See
// also Runner.StreamReordered for direct streaming evaluation over
// disordered input.
type Reorderer = engine.Reorderer

// NewReorderer creates a Reorderer with the given lateness bound.
func NewReorderer(slack Duration) *Reorderer { return engine.NewReorderer(slack) }

// Pattern model re-exports.
type (
	// Pattern is a SES pattern P = (⟨V1..Vm⟩, Θ, τ).
	Pattern = pattern.Pattern
	// Variable is an event variable of an event set pattern.
	Variable = pattern.Variable
	// Condition is one condition θ ∈ Θ.
	Condition = pattern.Condition
	// Op is a comparison operator.
	Op = pattern.Op
	// PatternBuilder assembles a Pattern fluently.
	PatternBuilder = pattern.Builder
	// Analysis classifies a pattern per the paper's complexity cases.
	Analysis = pattern.Analysis
)

// Comparison operators for pattern conditions.
const (
	Eq = pattern.Eq
	Ne = pattern.Ne
	Lt = pattern.Lt
	Le = pattern.Le
	Gt = pattern.Gt
	Ge = pattern.Ge
)

// Var constructs a singleton event variable; Plus a Kleene-plus group
// variable (v+); Opt an optional singleton (v?); Star an optional
// group (v*). Optional variables are an extension beyond the paper.
var (
	Var  = pattern.Var
	Plus = pattern.Plus
	Opt  = pattern.Opt
	Star = pattern.Star
)

// NewPattern returns a fluent pattern builder:
//
//	p, err := ses.NewPattern().
//	    Set(ses.Var("c"), ses.Plus("p"), ses.Var("d")).
//	    Set(ses.Var("b")).
//	    WhereConst("c", "L", ses.Eq, ses.String("C")).
//	    ...
//	    Within(264 * ses.Hour).
//	    Build()
func NewPattern() *PatternBuilder { return pattern.New() }

// Analyze classifies the pattern into the complexity cases of the
// paper's Section 4.4 (Theorems 1-3) and reports the bound on the
// number of simultaneous automaton instances.
func Analyze(p *Pattern) Analysis { return pattern.Analyze(p) }

// ParseQuery parses the textual pattern language:
//
//	PATTERN PERMUTE(c, p+, d) THEN (b) WHERE ... WITHIN 264h
//
// Errors carry line and column positions.
func ParseQuery(src string) (*Pattern, error) { return query.Parse(src) }

// MustParseQuery is ParseQuery that panics on error.
func MustParseQuery(src string) *Pattern { return query.MustParse(src) }

// Engine re-exports.
type (
	// Match is one matching substitution γ.
	Match = engine.Match
	// Binding is the events bound to one variable within a match.
	Binding = engine.Binding
	// Metrics are execution counters (instances, iterations, ...).
	Metrics = engine.Metrics
	// Runner evaluates an automaton incrementally (Step/Flush/Stream).
	Runner = engine.Runner
	// Option configures evaluation.
	Option = engine.Option
	// Strategy selects the event selection strategy.
	Strategy = engine.Strategy
)

// Evaluation options.
var (
	// WithFilter toggles the event filtering optimisation
	// (Section 4.5 of the paper).
	WithFilter = engine.WithFilter
	// WithStrategy selects SkipTillNext (the paper's semantics,
	// default) or SkipTillAny.
	WithStrategy = engine.WithStrategy
	// WithMaxInstances caps simultaneous automaton instances.
	WithMaxInstances = engine.WithMaxInstances
	// WithEmitOnAccept switches to first-match alerting: emit the
	// moment the accepting state is reached instead of waiting for the
	// greedy MAXIMAL emission at expiry.
	WithEmitOnAccept = engine.WithEmitOnAccept
	// WithOverloadPolicy selects the graceful-degradation behavior
	// applied when the WithMaxInstances cap is reached.
	WithOverloadPolicy = engine.WithOverloadPolicy
	// WithShedLowWater sets the resume threshold of ShedStartStates.
	WithShedLowWater = engine.WithShedLowWater
	// WithCheckpointing makes Runner.Stream snapshot the runner state
	// every n events and hand the bytes to a sink.
	WithCheckpointing = engine.WithCheckpointing
	// WithWorkers sets the worker-pool size for MatchPartitioned (and
	// the default shard count for ShardedRunner). 0 or 1 means
	// sequential.
	WithWorkers = engine.WithWorkers
	// WithShardBuffer sets the per-shard input channel capacity of
	// ShardedRunner (backpressure bound).
	WithShardBuffer = engine.WithShardBuffer
	// WithWatermarkEvery sets how many events the ShardedRunner
	// dispatcher admits between watermark broadcasts.
	WithWatermarkEvery = engine.WithWatermarkEvery
	// WithCompiledChecks toggles the kind-specialized compiled
	// transition predicates (on by default). WithCompiledChecks(false)
	// falls back to the generic event.Compare interpreter; match
	// streams are identical either way.
	WithCompiledChecks = engine.WithCompiledChecks
)

// Event selection strategies.
const (
	SkipTillNext = engine.SkipTillNext
	SkipTillAny  = engine.SkipTillAny
)

// Aggregation re-exports: online match aggregation (AGGREGATE/HAVING).
type (
	// Aggregator accumulates the aggregate results of one query: every
	// accepted match folds into a per-partition group of counts and
	// sums instead of being enumerated. Create one with
	// Query.NewAggregator and attach it via WithAggregation.
	Aggregator = engine.Aggregator
	// AggPlan is an AGGREGATE clause compiled against an automaton.
	AggPlan = engine.AggPlan
)

var (
	// WithAggregation attaches an Aggregator: every completed match is
	// folded into its partition group at the moment it is emitted.
	WithAggregation = engine.WithAggregation
	// WithAggregateOnly suppresses match materialization: accepted
	// matches are folded and counted but never built, encoded or
	// returned — the enumeration-free path for aggregate-only queries.
	WithAggregateOnly = engine.WithAggregateOnly
)

// OverloadPolicy decides what happens when the instance cap is hit.
type OverloadPolicy = engine.OverloadPolicy

// Overload policies for WithOverloadPolicy.
const (
	// Fail errors out at the cap (paper-exact behavior; default).
	Fail = engine.Fail
	// RejectNew refuses input events while the instance set is full.
	RejectNew = engine.RejectNew
	// DropOldest evicts the instances with the oldest start times.
	DropOldest = engine.DropOldest
	// ShedStartStates stops opening new start instances until the
	// instance set drains below the low-water mark.
	ShedStartStates = engine.ShedStartStates
)

// SnapshotVersion is the version of the checkpoint format written by
// Runner.WriteSnapshot and accepted by RestoreRunner.
const SnapshotVersion = engine.SnapshotVersion

// Resilience re-exports: supervised streams and fault injection. See
// package internal/resilience for full documentation.
type (
	// SuperviseConfig parameterizes Query.Supervise.
	SuperviseConfig = resilience.Config
	// StreamSupervisor reports the health of a supervised stream.
	StreamSupervisor = resilience.Supervisor
	// ChaosConfig parameterizes NewChaosSource.
	ChaosConfig = resilience.ChaosConfig
	// ChaosSource injects stream imperfections for torture testing.
	ChaosSource = resilience.ChaosSource
	// ChaosStats counts injected faults.
	ChaosStats = resilience.ChaosStats
)

var (
	// NewChaosSource wraps an event channel with fault injection.
	NewChaosSource = resilience.NewChaosSource
	// ErrLate is the dead-letter reason for events beyond the slack.
	ErrLate = resilience.ErrLate
	// ErrSchema is the dead-letter reason for schema-invalid events.
	ErrSchema = resilience.ErrSchema
	// ErrSentinelTime is the dead-letter reason for events carrying a
	// reserved sentinel timestamp (MinTime/MaxTime of the time domain).
	ErrSentinelTime = resilience.ErrSentinelTime
)

// Observability re-exports: the metrics registry, the debug HTTP
// server and instance-lifecycle tracing. See package internal/obs and
// the engine's WithTrace documentation.
type (
	// MetricsRegistry holds named counters, gauges and histograms and
	// renders them in the Prometheus text exposition format.
	MetricsRegistry = obs.Registry
	// DebugServer is a running observability HTTP server (/metrics,
	// /debug/vars, /debug/pprof).
	DebugServer = obs.DebugServer
	// TraceStep describes one instance-lifecycle event delivered to a
	// WithTrace hook.
	TraceStep = engine.TraceStep
	// TraceKind classifies a TraceStep (transition, spawn, expire,
	// shed, match).
	TraceKind = engine.TraceKind
)

// Trace step kinds.
const (
	TraceTransition = engine.TraceTransition
	TraceSpawn      = engine.TraceSpawn
	TraceExpire     = engine.TraceExpire
	TraceShed       = engine.TraceShed
	TraceMatch      = engine.TraceMatch
)

var (
	// NewMetricsRegistry creates an empty metrics registry.
	NewMetricsRegistry = obs.NewRegistry
	// ServeDebug starts the observability HTTP server on an address,
	// exposing the registry on /metrics plus expvar and pprof.
	ServeDebug = obs.ServeDebug
	// MetricsHandler returns an http.Handler serving a registry in the
	// Prometheus text format, for embedding into an existing server.
	MetricsHandler = obs.Handler
	// WithMetricsRegistry attaches a registry into which streaming
	// evaluators (ShardedRunner, Supervise via SuperviseConfig.Registry)
	// export live gauges and counters.
	WithMetricsRegistry = engine.WithMetricsRegistry
	// WithMetricLabels attaches label key/value pairs to every metric
	// series an evaluator registers, so several evaluators can share
	// one registry without colliding on series names.
	WithMetricLabels = engine.WithMetricLabels
	// WithTrace installs a hook invoked for every instance-lifecycle
	// event (spawn, transition, expire, shed, match).
	WithTrace = engine.WithTrace
)

// Serving-layer re-exports: the multi-query server behind cmd/sesd.
// See package internal/server for full documentation.
type (
	// Server fans one ingested event stream out to a registry of
	// concurrently running SES queries, each evaluated by its own
	// supervised or sharded pipeline behind a bounded mailbox, with
	// matches streamed over HTTP as NDJSON or SSE.
	Server = server.Server
	// ServerConfig parameterizes NewServer.
	ServerConfig = server.Config
	// QuerySpec is the registration request for one served query.
	QuerySpec = server.QuerySpec
	// QueryInfo is the externally visible state of a served query.
	QueryInfo = server.QueryInfo
)

var (
	// NewServer creates a multi-query serving layer over one event
	// schema; see Server.Handler for its HTTP API.
	NewServer = server.New
	// ErrServerDraining rejects registrations and ingest after
	// Server.Drain has begun.
	ErrServerDraining = server.ErrDraining
	// ErrDuplicateQuery rejects a registration whose id is taken or
	// whose automaton fingerprint equals a registered query's.
	ErrDuplicateQuery = server.ErrDuplicate
	// ErrQueryNotFound reports an unknown query id.
	ErrQueryNotFound = server.ErrNotFound
)

// TraceJSON returns an evaluation option that streams every
// instance-lifecycle event of a run as one JSON object per line to w
// (the `sesmatch -trace out.jsonl` format), plus a function reporting
// the first write error once evaluation is done. The hook is safe for
// concurrent use under sharded execution. Queries with optional
// variables are rejected: their variant automata would render
// ambiguous state labels.
func (q *Query) TraceJSON(w io.Writer) (Option, func() error, error) {
	if len(q.autos) != 1 {
		return nil, nil, fmt.Errorf("ses: TraceJSON does not support optional variables (%d variants)", len(q.autos))
	}
	tw := engine.NewTraceJSON(w, q.autos[0])
	return engine.WithTrace(tw.Hook()), tw.Err, nil
}

// MatchJSON encodes a match as JSON, using the schema for attribute
// names.
func MatchJSON(m Match, schema *Schema) ([]byte, error) { return engine.MatchJSON(m, schema) }

// FilterMaximal drops matches that are proper subsets of another match
// with the same start time (condition 5 of the paper's Definition 2).
// Only needed when the input contains events with identical
// timestamps.
func FilterMaximal(matches []Match) []Match { return engine.FilterMaximal(matches) }

// Query is a compiled SES pattern ready to run against relations or
// streams whose schema matches the one it was compiled for.
//
// Patterns with optional variables (v?, v* — an extension beyond the
// paper) compile into several variant automata, one per subset of
// included optionals; Match evaluates their union and applies the
// MAXIMAL preference for binding optional variables.
type Query struct {
	p     *Pattern
	autos []*automaton.Automaton
}

// Compile parses (if src is a string) or accepts a *Pattern and
// compiles it into an executable query for the given schema.
func Compile[P interface{ *Pattern | string }](src P, schema *Schema) (*Query, error) {
	var p *Pattern
	switch v := any(src).(type) {
	case string:
		parsed, err := query.Parse(v)
		if err != nil {
			return nil, err
		}
		p = parsed
	case *Pattern:
		p = v
	}
	variants, err := pattern.ExpandOptionals(p)
	if err != nil {
		return nil, err
	}
	q := &Query{p: p.Clone()}
	for _, v := range variants {
		a, err := automaton.Compile(v, schema)
		if err != nil {
			return nil, err
		}
		q.autos = append(q.autos, a)
	}
	return q, nil
}

// MustCompile is Compile that panics on error.
func MustCompile[P interface{ *Pattern | string }](src P, schema *Schema) *Query {
	q, err := Compile(src, schema)
	if err != nil {
		panic(err)
	}
	return q
}

// Pattern returns the compiled pattern (with its optional variables
// intact, if any).
func (q *Query) Pattern() *Pattern { return q.p }

// Variants returns the number of variant automata the query compiled
// into: 1 for plain patterns, up to 2^k for k optional variables.
func (q *Query) Variants() int { return len(q.autos) }

// States returns the number of automaton states (|Q| of Definition 3),
// summed over variants.
func (q *Query) States() int {
	n := 0
	for _, a := range q.autos {
		n += a.NumStates()
	}
	return n
}

// Transitions returns the number of automaton transitions (|∆|),
// summed over variants.
func (q *Query) Transitions() int {
	n := 0
	for _, a := range q.autos {
		n += a.NumTransitions()
	}
	return n
}

// WriteDOT renders the compiled SES automata in Graphviz DOT format,
// one digraph per variant.
func (q *Query) WriteDOT(w io.Writer, name string) error {
	for i, a := range q.autos {
		n := name
		if len(q.autos) > 1 {
			n = fmt.Sprintf("%s_variant%d", name, i)
		}
		if err := a.WriteDOT(w, n); err != nil {
			return err
		}
	}
	return nil
}

// Explain renders a human-readable query plan: the pattern, its
// complexity classification per the paper's Theorems 1-3, the compiled
// automaton shape (per variant for optional-variable queries), and the
// constant conditions the Section 4.5 event filter can use.
func (q *Query) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "pattern:\n%s\n\n", q.p)
	fmt.Fprintf(&b, "complexity (Section 4.4):\n%s\n\n", pattern.Analyze(q.p))
	if len(q.autos) > 1 {
		fmt.Fprintf(&b, "optional variables expand into %d variant automata:\n", len(q.autos))
	}
	for i, a := range q.autos {
		prefix := ""
		if len(q.autos) > 1 {
			prefix = fmt.Sprintf("variant %d: ", i)
		}
		fmt.Fprintf(&b, "%sautomaton: %d states, %d transitions, accept %s\n",
			prefix, a.NumStates(), a.NumTransitions(), a.StateLabel(a.Accept))
	}
	b.WriteString("\nevent filter (Section 4.5) constant conditions per variable:\n")
	for _, set := range q.p.Sets {
		for _, v := range set {
			conds := q.p.ConstConds(v.Name)
			if len(conds) == 0 {
				fmt.Fprintf(&b, "  %s: (none — every event passes for this variable)\n", v)
				continue
			}
			parts := make([]string, len(conds))
			for i, c := range conds {
				parts[i] = c.String()
			}
			fmt.Fprintf(&b, "  %s: %s\n", v, strings.Join(parts, " AND "))
		}
	}
	return b.String()
}

// Match evaluates the query over a complete, time-sorted relation and
// returns all matching substitutions plus execution metrics. For
// queries with optional variables the variants' results are combined
// and the MAXIMAL preference is applied.
func (q *Query) Match(rel *Relation, opts ...Option) ([]Match, Metrics, error) {
	if len(q.autos) == 1 {
		return engine.Run(q.autos[0], rel, opts...)
	}
	return engine.RunUnion(q.autos, rel, opts...)
}

// Runner creates an incremental evaluator for a single-variant query.
// Feed events in time order with Step, finish with Flush, or attach a
// channel with Stream. For queries with optional variables use
// UnionRunner instead; Runner panics on them.
func (q *Query) Runner(opts ...Option) *Runner {
	if len(q.autos) != 1 {
		panic("ses: Runner on a query with optional variables; use UnionRunner")
	}
	return engine.New(q.autos[0], opts...)
}

// RestoreRunner reconstructs a Runner from a checkpoint written by
// Runner.WriteSnapshot, so a crashed or migrated stream resumes from
// its last checkpoint instead of reprocessing from scratch. The query
// must compile to the same automaton the snapshot was taken from
// (validated via a structural fingerprint) and must be single-variant.
func (q *Query) RestoreRunner(rd io.Reader, opts ...Option) (*Runner, error) {
	if len(q.autos) != 1 {
		return nil, fmt.Errorf("ses: RestoreRunner does not support optional variables (%d variants)", len(q.autos))
	}
	return engine.RestoreRunner(q.autos[0], rd, opts...)
}

// Supervise runs a resilient streaming evaluation of a single-variant
// query: events are schema-validated, reordered within
// cfg.Slack, deduplicated within cfg.DedupWindow, and evaluated by a
// runner (built with opts) that is checkpointed periodically and
// restarted from its last checkpoint — with capped exponential backoff
// and deterministic replay — when the pipeline panics. Late and
// malformed events go to cfg.DeadLetter instead of being dropped
// silently. See SuperviseConfig for the knobs and StreamSupervisor for
// the health counters.
func (q *Query) Supervise(ctx context.Context, in <-chan Event, cfg SuperviseConfig, opts ...Option) (<-chan Match, *StreamSupervisor, error) {
	if len(q.autos) != 1 {
		return nil, nil, fmt.Errorf("ses: Supervise does not support optional variables (%d variants)", len(q.autos))
	}
	out, sup := resilience.Supervise(ctx, q.autos[0], opts, in, cfg)
	return out, sup, nil
}

// MatchIndexed evaluates a single-variant query with the
// instance-indexed evaluator (the paper's future-work optimisation):
// instances are bucketed by automaton state and an event only visits
// the buckets its type can fire. Results are identical to Match; the
// payoff grows with the selectivity of the pattern's constant
// conditions. Queries with optional variables are not supported.
func (q *Query) MatchIndexed(rel *Relation, opts ...Option) ([]Match, Metrics, error) {
	if len(q.autos) != 1 {
		return nil, Metrics{}, fmt.Errorf("ses: MatchIndexed does not support optional variables (%d variants)", len(q.autos))
	}
	return engine.RunIndexed(q.autos[0], rel, opts...)
}

// IndexedRunner is the incremental instance-indexed evaluator.
type IndexedRunner = engine.IndexedRunner

// IndexedRunner creates an incremental instance-indexed evaluator for
// a single-variant query.
func (q *Query) IndexedRunner(opts ...Option) (*IndexedRunner, error) {
	if len(q.autos) != 1 {
		return nil, fmt.Errorf("ses: IndexedRunner does not support optional variables (%d variants)", len(q.autos))
	}
	return engine.NewIndexed(q.autos[0], opts...)
}

// UnionRunner is an incremental evaluator over a query's variant
// automata (queries with optional variables).
type UnionRunner = engine.Union

// UnionRunner creates an incremental evaluator covering all variants
// of the query. Note that the cross-variant MAXIMAL preference cannot
// be applied incrementally; batch evaluation (Match) applies it, and
// stream consumers may apply FilterMaximal per collected window.
func (q *Query) UnionRunner(opts ...Option) (*UnionRunner, error) {
	return engine.NewUnion(q.autos, opts...)
}

// HasAggregate reports whether the query carries an AGGREGATE clause.
func (q *Query) HasAggregate() bool { return q.p.Agg != nil }

// NewAggregator compiles the query's AGGREGATE clause against its
// automaton and returns an empty Aggregator to attach via
// WithAggregation. Errors when the query has no AGGREGATE clause or
// uses optional variables (aggregation would count matches the
// cross-variant MAXIMAL filter discards).
func (q *Query) NewAggregator() (*Aggregator, error) {
	if q.p.Agg == nil {
		return nil, fmt.Errorf("ses: query has no AGGREGATE clause")
	}
	if len(q.autos) != 1 {
		return nil, fmt.Errorf("ses: aggregation does not support optional variables (%d variants)", len(q.autos))
	}
	plan, err := engine.CompileAggregate(q.autos[0], q.p.Agg)
	if err != nil {
		return nil, err
	}
	return engine.NewAggregator(plan), nil
}

// Aggregate evaluates an AGGREGATE query over a complete, time-sorted
// relation on the enumeration-free path (no Match values are built)
// and returns the aggregate results as the stats JSON document
// (Aggregator.Stats) plus execution metrics.
func (q *Query) Aggregate(rel *Relation, opts ...Option) ([]byte, Metrics, error) {
	ag, err := q.NewAggregator()
	if err != nil {
		return nil, Metrics{}, err
	}
	opts = append(append([]Option{}, opts...), WithAggregation(ag), WithAggregateOnly(true))
	r := engine.New(q.autos[0], opts...)
	_, m, err := engine.RunOn(r, rel)
	if err != nil {
		return nil, m, err
	}
	data, _, _ := ag.Stats(0)
	return data, m, nil
}

// MatchPartitioned splits the relation by the named attribute and
// evaluates the query independently per partition, implementing the
// "for each <entity>" reading of queries like the paper's Q1 ("for
// each patient, find ..."). This differs from Match on the interleaved
// relation under skip-till-next-match: there, an instance whose next
// transitions carry no join condition yet (e.g. a group variable bound
// before its join partner) is forced to consume matching events of
// OTHER entities, killing the per-entity match. Partitioned evaluation
// confines every instance to one entity.
//
// Matches keep the original relation's event sequence numbers and are
// returned ordered by start time; metrics are aggregated over the
// partitions with Metrics merge semantics (throughput counters sum,
// the instance peak is the per-partition maximum).
//
// With WithWorkers(n), n > 1, partitions are evaluated concurrently on
// a bounded worker pool; the result is byte-identical to the
// sequential evaluation.
func (q *Query) MatchPartitioned(rel *Relation, attr string, opts ...Option) ([]Match, Metrics, error) {
	return q.matchPartitioned(rel, attr, engine.Workers(opts...), opts...)
}

// MatchPartitionedParallel is MatchPartitioned with an explicit worker
// count: partitions are evaluated concurrently on a pool of `workers`
// goroutines (0 means GOMAXPROCS), each reusing one evaluator across
// the partitions it handles. Matches, their order, and the aggregated
// metrics are identical to MatchPartitioned's: per-partition results
// are stably sorted by start time and k-way merged in partition order,
// which reproduces the sequential output exactly.
func (q *Query) MatchPartitionedParallel(rel *Relation, attr string, workers int, opts ...Option) ([]Match, Metrics, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return q.matchPartitioned(rel, attr, workers, opts...)
}

func (q *Query) matchPartitioned(rel *Relation, attr string, workers int, opts ...Option) ([]Match, Metrics, error) {
	_, parts, err := rel.PartitionOrdered(attr)
	if err != nil {
		return nil, Metrics{}, err
	}
	results := make([][]Match, len(parts))
	metrics := make([]Metrics, len(parts))
	errs := make([]error, len(parts))

	// evalRange evaluates a set of partitions delivered over idx,
	// reusing one runner for all of them when the query is
	// single-variant (the common case; multi-variant queries fall back
	// to a fresh union evaluation per partition).
	evalRange := func(idx <-chan int) {
		var r *engine.Runner
		if len(q.autos) == 1 {
			r = engine.New(q.autos[0], opts...)
		}
		for i := range idx {
			var ms []Match
			var m Metrics
			var err error
			if r != nil {
				ms, m, err = engine.RunOn(r, parts[i])
			} else {
				ms, m, err = q.Match(parts[i], opts...)
			}
			if err != nil {
				errs[i] = err
				continue
			}
			engine.SortByStart(ms)
			results[i] = ms
			metrics[i] = m
		}
	}

	if workers > len(parts) {
		workers = len(parts)
	}
	idx := make(chan int)
	if workers <= 1 {
		go func() {
			for i := range parts {
				idx <- i
			}
			close(idx)
		}()
		evalRange(idx)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				evalRange(idx)
			}()
		}
		for i := range parts {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}

	var agg Metrics
	for i := range parts {
		if errs[i] != nil {
			return nil, agg, errs[i]
		}
		agg.Merge(metrics[i])
	}
	// Stable k-way merge of the per-partition sorted lists in partition
	// order ≡ a stable sort by start time over their concatenation: the
	// exact order the sequential path historically returned, without
	// re-sorting the combined result.
	return engine.MergeByStart(results), agg, nil
}

// ShardedRunner is the streaming parallel executor: events are
// hash-partitioned by a key attribute onto per-shard evaluators and
// completed matches are merged back into one deterministic stream.
type ShardedRunner = engine.ShardedRunner

// ShardedRunner creates a streaming parallel executor for a
// single-variant query: incoming events are hash-partitioned by the
// key attribute onto `shards` single-goroutine evaluators (0 means
// WithWorkers/GOMAXPROCS), with bounded channels for backpressure and
// a watermark-driven merge producing a deterministic output order
// independent of the shard count. Semantics per key are exactly
// MatchPartitioned's. Checkpointing options are not supported; queries
// with optional variables are not supported.
func (q *Query) ShardedRunner(keyAttr string, shards int, opts ...Option) (*ShardedRunner, error) {
	if len(q.autos) != 1 {
		return nil, fmt.Errorf("ses: ShardedRunner does not support optional variables (%d variants)", len(q.autos))
	}
	return engine.NewSharded(q.autos[0], keyAttr, shards, opts...)
}

// CSV persistence.

// ReadOptions configure LoadCSV.
type ReadOptions = store.ReadOptions

// LoadCSV reads a typed-CSV event relation (see package
// internal/store for the format: a header of name:type columns with
// exactly one time column).
func LoadCSV(r io.Reader, opts ReadOptions) (*Relation, error) { return store.Read(r, opts) }

// WriteCSV writes the relation as typed CSV.
func WriteCSV(w io.Writer, rel *Relation) error { return store.Write(w, rel) }

// LoadCSVFile reads a typed-CSV event relation from a file.
func LoadCSVFile(path string, opts ReadOptions) (*Relation, error) {
	return store.LoadFile(path, opts)
}

// SaveCSVFile writes the relation to a file.
func SaveCSVFile(path string, rel *Relation) error { return store.SaveFile(path, rel) }
